#include "lowerbound/optimal_referee.h"

#include <gtest/gtest.h>

#include "lowerbound/accounting.h"
#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

rs::RsGraph mini_base() { return rs::book_rs(1, 2); }

TEST(OptimalReferee, FullReportIsPerfect) {
  const FullReportEncoder full;
  const auto result = optimal_referee_success(mini_base(), 2, full);
  EXPECT_NEAR(result.optimal_success, 1.0, 1e-9);
  EXPECT_NEAR(result.greedy_success, 1.0, 1e-9);
  EXPECT_NEAR(result.info_m_pi, result.kr, 1e-9);
  EXPECT_NEAR(result.fano_success_bound, 1.0, 1e-9);
}

TEST(OptimalReferee, SilentProtocolOptimalIsGuessing) {
  // With no communication, the best referee guesses one of the 2^{kr}
  // patterns: success exactly 2^{-kr}.
  const SilentEncoder silent;
  const auto result = optimal_referee_success(mini_base(), 2, silent);
  EXPECT_NEAR(result.optimal_success, 0.25, 1e-9);  // kr = 2
  EXPECT_NEAR(result.greedy_success, 0.25, 1e-9);   // empty output; right
                                                    // iff everything dropped
  EXPECT_NEAR(result.info_m_pi, 0.0, 1e-9);
  EXPECT_NEAR(result.fano_success_bound, 0.5, 1e-9);  // (0+1)/2
  // Fano ceiling respected.
  EXPECT_LE(result.optimal_success, result.fano_success_bound + 1e-9);
}

TEST(OptimalReferee, OptimalDominatesGreedyAlways) {
  const FullReportEncoder full;
  const CappedReportEncoder cap1(1);
  const SilentEncoder silent;
  const ParityEncoder parity;
  for (const RefinedEncoder* enc :
       std::initializer_list<const RefinedEncoder*>{&full, &cap1, &silent,
                                                    &parity}) {
    const auto result = optimal_referee_success(mini_base(), 2, *enc);
    EXPECT_GE(result.optimal_success, result.greedy_success - 1e-9)
        << enc->name();
    EXPECT_LE(result.optimal_success, result.fano_success_bound + 1e-9)
        << enc->name();
    EXPECT_GE(result.info_m_pi, -1e-9) << enc->name();
    EXPECT_LE(result.info_m_pi, result.kr + 1e-9) << enc->name();
  }
}

TEST(OptimalReferee, ParityBeatsSilence) {
  // One parity bit per player strictly helps the MAP referee on the mini
  // instance (each leaf player's parity IS its survival bit).
  const SilentEncoder silent;
  const ParityEncoder parity;
  const auto s = optimal_referee_success(mini_base(), 2, silent);
  const auto p = optimal_referee_success(mini_base(), 2, parity);
  EXPECT_GT(p.optimal_success, s.optimal_success + 0.1);
  EXPECT_GT(p.info_m_pi, 0.5);
  // But the greedy edge-union referee can't use parity bits at all.
  EXPECT_NEAR(p.greedy_success, s.greedy_success, 1e-9);
}

TEST(OptimalReferee, InformationMatchesAccountingModule) {
  // Two independent computations of I(M ; Pi | Sigma, J) must agree.
  const CappedReportEncoder cap1(1);
  const auto opt = optimal_referee_success(mini_base(), 2, cap1);
  const auto acct = enumerate_accounting(mini_base(), 2, cap1);
  EXPECT_NEAR(opt.info_m_pi, acct.info_m_pi, 1e-9);
}

TEST(OptimalReferee, SigmaAveragedRunsWork) {
  const FullReportEncoder full;
  const auto sigmas = all_permutations(5);
  const auto result =
      optimal_referee_success(mini_base(), 2, full, sigmas);
  EXPECT_NEAR(result.optimal_success, 1.0, 1e-9);
}

TEST(OptimalReferee, LargerInstanceMonotoneInCap) {
  const rs::RsGraph base = rs::book_rs(2, 2);  // kr = 4 with k = 2
  const SilentEncoder silent;
  const CappedReportEncoder cap1(1);
  const FullReportEncoder full;
  const double s0 = optimal_referee_success(base, 2, silent).optimal_success;
  const double s1 = optimal_referee_success(base, 2, cap1).optimal_success;
  const double s2 = optimal_referee_success(base, 2, full).optimal_success;
  EXPECT_NEAR(s0, 1.0 / 16.0, 1e-9);
  EXPECT_LE(s0, s1 + 1e-9);
  EXPECT_LE(s1, s2 + 1e-9);
  EXPECT_NEAR(s2, 1.0, 1e-9);
}

}  // namespace
}  // namespace ds::lowerbound
