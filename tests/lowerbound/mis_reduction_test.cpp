#include "lowerbound/mis_reduction.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/independent_set.h"
#include "graph/matching.h"
#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

using graph::Edge;
using graph::Vertex;

class Reduction : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    base_ = rs::rs_graph(6);
    util::Rng rng(GetParam());
    inst_ = sample_dmm(base_, base_.t(), rng);
    h_ = build_reduction_graph(inst_);
  }
  rs::RsGraph base_;
  DmmInstance inst_;
  graph::Graph h_;
};

TEST_P(Reduction, HHasTwoCopiesOfG) {
  const Vertex n = inst_.params.n;
  EXPECT_EQ(h_.num_vertices(), 2 * n);
  for (const Edge& e : inst_.g.edges()) {
    EXPECT_TRUE(h_.has_edge(e.u, e.v));
    EXPECT_TRUE(h_.has_edge(n + e.u, n + e.v));
  }
}

TEST_P(Reduction, PublicBicliquePresent) {
  const Vertex n = inst_.params.n;
  for (Vertex u : inst_.public_final) {
    for (Vertex v : inst_.public_final) {
      EXPECT_TRUE(h_.has_edge(u, n + v));
    }
  }
}

TEST_P(Reduction, NoSpuriousCrossEdges) {
  const Vertex n = inst_.params.n;
  // Cross edges (left, right) exist only between public copies.
  for (const Edge& e : h_.edges()) {
    const bool u_left = e.u < n;
    const bool v_left = e.v < n;
    if (u_left == v_left) continue;
    const Vertex lu = u_left ? e.u : e.v;
    const Vertex rv = (u_left ? e.v : e.u) - n;
    EXPECT_TRUE(inst_.is_public[lu]) << "cross edge from unique vertex";
    EXPECT_TRUE(inst_.is_public[rv]) << "cross edge to unique vertex";
  }
}

TEST_P(Reduction, MisOfHDecodesTheSurvivingMatching) {
  // Run several true MIS's of H through the referee decoding; Lemma 4.1
  // guarantees exact recovery every time.
  util::Rng rng(GetParam() + 50);
  for (int rep = 0; rep < 5; ++rep) {
    const auto mis = graph::greedy_mis_random(h_, rng);
    ASSERT_TRUE(graph::is_maximal_independent_set(h_, mis));

    const Lemma41Audit audit = audit_lemma41(inst_, mis);
    EXPECT_TRUE(audit.some_side_empty);
    EXPECT_TRUE(audit.left_equivalence);
    EXPECT_TRUE(audit.right_equivalence);
    EXPECT_TRUE(audit.decoded_exactly);

    graph::Matching decoded = decode_matching_from_mis(inst_, mis);
    graph::Matching expected = inst_.all_surviving_special();
    auto canon = [](graph::Matching& m) {
      for (Edge& e : m) e = e.normalized();
      std::sort(m.begin(), m.end());
    };
    canon(decoded);
    canon(expected);
    EXPECT_EQ(decoded, expected);
    // And the decoded matching is valid in G, supported on unique
    // vertices (Remark 3.6(iv) form).
    EXPECT_TRUE(graph::is_valid_matching(inst_.g, decoded));
    EXPECT_EQ(count_unique_unique(inst_, decoded), decoded.size());
  }
}

TEST_P(Reduction, LubyMisAlsoDecodes) {
  util::Rng rng(GetParam() + 99);
  const auto mis = graph::luby_mis(h_, rng);
  ASSERT_TRUE(graph::is_maximal_independent_set(h_, mis));
  EXPECT_TRUE(audit_lemma41(inst_, mis).decoded_exactly);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Reduction, ::testing::Values(1, 2, 3, 4));

TEST(ReductionCost, SimulatingBothCopiesDoublesTheMessage) {
  // The reduction's communication claim: each original player simulates
  // its two copies, so cost 2b. Structural check: every vertex of G
  // appears as exactly two vertices of H with identical within-copy
  // neighborhoods.
  const rs::RsGraph base = rs::rs_graph(5);
  util::Rng rng(7);
  const DmmInstance inst = sample_dmm(base, base.t(), rng);
  const graph::Graph h = build_reduction_graph(inst);
  const Vertex n = inst.params.n;
  for (Vertex v = 0; v < n; ++v) {
    if (inst.is_public[v]) continue;  // publics gain biclique edges
    std::vector<Vertex> left, right;
    for (Vertex w : h.neighbors(v)) left.push_back(w);
    for (Vertex w : h.neighbors(n + v)) right.push_back(static_cast<Vertex>(w - n));
    EXPECT_EQ(left, right);
    std::vector<Vertex> original(inst.g.neighbors(v).begin(),
                                 inst.g.neighbors(v).end());
    EXPECT_EQ(left, original);
  }
}

}  // namespace
}  // namespace ds::lowerbound
