#include "lowerbound/accounting.h"

#include <gtest/gtest.h>

#include <numeric>

#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

// The enumerable mini-instance: book RS with r = 1, t = 2, k = 2
// (k*t*r = 4 survival bits, n = 5).
rs::RsGraph mini_base() { return rs::book_rs(1, 2); }

TEST(Accounting, FullReportSucceedsAlwaysAndSaturatesInformation) {
  const rs::RsGraph base = mini_base();
  const FullReportEncoder full;
  const AccountingResult result = enumerate_accounting(base, 2, full);
  EXPECT_NEAR(result.success_prob, 1.0, 1e-12);
  EXPECT_TRUE(result.lemma33_applicable);
  // The transcript determines every survival bit: I(M ; Pi | Sigma, J)
  // equals H(M | Sigma, J) = k*r = 2 bits exactly.
  EXPECT_NEAR(result.info_m_pi, result.kr, 1e-9);
  EXPECT_TRUE(result.lemma33_holds);
  EXPECT_TRUE(result.lemma34_holds);
}

TEST(Accounting, SilentProtocolRevealsNothingAndFails) {
  const rs::RsGraph base = mini_base();
  const SilentEncoder silent;
  const AccountingResult result = enumerate_accounting(base, 2, silent);
  EXPECT_NEAR(result.info_m_pi, 0.0, 1e-9);
  EXPECT_NEAR(result.h_pi_public, 0.0, 1e-9);
  // Succeeds only when nothing survived to recover: (1/2)^{kr}... per
  // (j*, bits): success iff all special edges dropped = 2^-2 per j*.
  EXPECT_NEAR(result.success_prob, 0.25, 1e-9);
  EXPECT_FALSE(result.lemma33_applicable);
  EXPECT_TRUE(result.lemma34_holds);  // 0 <= 0 + 0
  EXPECT_EQ(result.max_message_bits, 0u);
}

TEST(Accounting, Lemma34DecompositionHoldsForAllEncoders) {
  const rs::RsGraph base = mini_base();
  const FullReportEncoder full;
  const CappedReportEncoder cap1(1);
  const SilentEncoder silent;
  for (const RefinedEncoder* enc :
       std::initializer_list<const RefinedEncoder*>{&full, &cap1, &silent}) {
    const AccountingResult result = enumerate_accounting(base, 2, *enc);
    EXPECT_TRUE(result.lemma34_holds)
        << enc->name() << ": " << result.info_m_pi << " > "
        << result.lemma34_rhs;
  }
}

TEST(Accounting, Lemma35HoldsWithFullSigmaEnumeration) {
  // Lemma 3.5 needs Sigma uniform; n = 5 here, so enumerate all 120
  // permutations exactly.
  const rs::RsGraph base = mini_base();
  const DmmParameters params = dmm_parameters(base, 2);
  ASSERT_EQ(params.n, 5u);
  const auto sigmas = all_permutations(params.n);
  ASSERT_EQ(sigmas.size(), 120u);

  const FullReportEncoder full;
  const AccountingResult result = enumerate_accounting(base, 2, full, sigmas);
  EXPECT_TRUE(result.lemma35_holds);
  for (std::size_t i = 0; i < result.info_mi_piui.size(); ++i) {
    EXPECT_LE(result.info_mi_piui[i],
              result.h_piui[i] / 2.0 + 1e-9)  // t = 2
        << "copy " << i;
  }
  // Success and the 3.3 / 3.4 chain must agree with the single-sigma run.
  EXPECT_NEAR(result.success_prob, 1.0, 1e-12);
  EXPECT_TRUE(result.lemma33_holds);
  EXPECT_TRUE(result.lemma34_holds);
}

TEST(Accounting, Lemma35AlsoHoldsForCappedEncoderOverSigmas) {
  const rs::RsGraph base = mini_base();
  const auto sigmas = all_permutations(5);
  const CappedReportEncoder cap1(1);
  const AccountingResult result = enumerate_accounting(base, 2, cap1, sigmas);
  EXPECT_TRUE(result.lemma35_holds);
  EXPECT_TRUE(result.lemma34_holds);
}

TEST(Accounting, InformationIsMonotoneInTheCap) {
  const rs::RsGraph base = mini_base();
  const SilentEncoder silent;
  const CappedReportEncoder cap1(1);
  const FullReportEncoder full;
  const double i0 = enumerate_accounting(base, 2, silent).info_m_pi;
  const double i1 = enumerate_accounting(base, 2, cap1).info_m_pi;
  const double i2 = enumerate_accounting(base, 2, full).info_m_pi;
  EXPECT_LE(i0, i1 + 1e-9);
  EXPECT_LE(i1, i2 + 1e-9);
}

TEST(Accounting, TheoremChainOnTheMiniInstance) {
  // The proof's final chain: for a successful protocol,
  //   kr/6 <= I(M ; Pi | Sigma, J)
  //        <= H(Pi(P)) + (1/t) * sum_i H(Pi(U_i))
  //        <= |P|*b + (k/t)*N*b.
  const rs::RsGraph base = mini_base();
  const FullReportEncoder full;
  const AccountingResult result = enumerate_accounting(base, 2, full);
  ASSERT_TRUE(result.lemma33_applicable);

  const DmmParameters params = dmm_parameters(base, 2);
  const double b = static_cast<double>(result.max_message_bits);
  double rhs = result.h_pi_public;
  for (double h : result.h_piui) rhs += h / static_cast<double>(params.t);
  EXPECT_GE(rhs + 1e-9, result.kr / 6.0);
  const double comm_budget =
      static_cast<double>(params.num_public()) * b +
      static_cast<double>(params.k * params.big_n) * b /
          static_cast<double>(params.t);
  EXPECT_GE(comm_budget + 1e-9, rhs);
}

TEST(Accounting, TableColumnsQueryable) {
  const rs::RsGraph base = mini_base();
  const FullReportEncoder full;
  const std::vector<std::vector<graph::Vertex>> sigmas{{0, 1, 2, 3, 4}};
  const info::JointTable table = accounting_table(base, 2, full, sigmas);
  // M determines (M1, M2) and vice versa.
  EXPECT_NEAR(table.entropy({"M"}), table.entropy({"M1", "M2"}), 1e-9);
  // M is uniform on kr = 2 bits given (Sigma, J).
  EXPECT_NEAR(table.entropy({"M"}), 2.0, 1e-9);
  // J is uniform on t = 2.
  EXPECT_NEAR(table.entropy({"J"}), 1.0, 1e-9);
}

TEST(Permutations, AllAndSampled) {
  EXPECT_EQ(all_permutations(3).size(), 6u);
  EXPECT_EQ(all_permutations(1).size(), 1u);
  util::Rng rng(3);
  const auto sampled = sampled_permutations(10, 7, rng);
  EXPECT_EQ(sampled.size(), 7u);
  for (const auto& sigma : sampled) EXPECT_EQ(sigma.size(), 10u);
}

}  // namespace
}  // namespace ds::lowerbound
