#include "lowerbound/dmm.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

using graph::Edge;
using graph::Vertex;

TEST(EdgeBits, SetGetPattern) {
  EdgeBits bits(2, 3, 4);
  EXPECT_EQ(bits.total_bits(), 24u);
  bits.set(1, 2, 3, true);
  bits.set(1, 2, 0, true);
  EXPECT_TRUE(bits.get(1, 2, 3));
  EXPECT_FALSE(bits.get(0, 2, 3));
  EXPECT_EQ(bits.pattern(1, 2), 0b1001u);
  EXPECT_EQ(bits.pattern(0, 0), 0u);
}

TEST(EdgeBits, FromMaskOrdering) {
  // Mask bit index = (i*t + j)*r + e.
  const EdgeBits bits = EdgeBits::from_mask(2, 2, 2, 0b10000001);
  EXPECT_TRUE(bits.get(0, 0, 0));
  EXPECT_TRUE(bits.get(1, 1, 1));
  EXPECT_FALSE(bits.get(0, 1, 0));
}

TEST(EdgeBits, RandomIsFair) {
  util::Rng rng(1);
  std::size_t ones = 0;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    const EdgeBits bits = EdgeBits::random(2, 3, 4, rng);
    for (std::uint64_t i = 0; i < 2; ++i)
      for (std::uint64_t j = 0; j < 3; ++j)
        for (std::uint64_t e = 0; e < 4; ++e) ones += bits.get(i, j, e);
  }
  const double rate = static_cast<double>(ones) / (kReps * 24.0);
  EXPECT_NEAR(rate, 0.5, 0.03);
}

TEST(DmmParameters, PaperFormulas) {
  const rs::RsGraph base = rs::book_rs(2, 3);
  const DmmParameters p = dmm_parameters(base, 3);
  EXPECT_EQ(p.big_n, 2u + 6u);
  EXPECT_EQ(p.r, 2u);
  EXPECT_EQ(p.t, 3u);
  EXPECT_EQ(p.k, 3u);
  EXPECT_EQ(p.n, 8u - 4u + 2u * 2u * 3u);  // N - 2r + 2rk = 16
  EXPECT_EQ(p.num_public(), 4u);
  EXPECT_EQ(p.num_unique(), 12u);
  EXPECT_EQ(p.claim31_threshold(), 6u / 4u);
}

class DmmStructure : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    base_ = rs::rs_graph(8);
    util::Rng rng(GetParam());
    inst_ = sample_dmm(base_, base_.t(), rng);
  }
  rs::RsGraph base_;
  DmmInstance inst_;
};

TEST_P(DmmStructure, VertexClassesPartition) {
  const DmmParameters& p = inst_.params;
  std::size_t publics = 0;
  for (Vertex v = 0; v < p.n; ++v) publics += inst_.is_public[v];
  EXPECT_EQ(publics, p.num_public());

  // public_final and all unique_final labels together hit every vertex
  // exactly once.
  std::set<Vertex> seen(inst_.public_final.begin(), inst_.public_final.end());
  EXPECT_EQ(seen.size(), p.num_public());
  for (const auto& copy : inst_.unique_final) {
    for (Vertex v : copy) {
      EXPECT_TRUE(seen.insert(v).second) << "label reused";
    }
  }
  EXPECT_EQ(seen.size(), p.n);
}

TEST_P(DmmStructure, SpecialMatchingsAreOnUniqueVertices) {
  for (const auto& m : inst_.special_full) {
    EXPECT_EQ(m.size(), inst_.params.r);
    for (const Edge& e : m) {
      EXPECT_FALSE(inst_.is_public[e.u]);
      EXPECT_FALSE(inst_.is_public[e.v]);
    }
  }
}

TEST_P(DmmStructure, SurvivingSpecialEdgesExistInG) {
  for (const auto& m : inst_.special_surviving) {
    for (const Edge& e : m) EXPECT_TRUE(inst_.g.has_edge(e.u, e.v));
  }
}

TEST_P(DmmStructure, DroppedSpecialEdgesAbsentFromG) {
  // The special matchings are induced and on unique (per-copy) vertices,
  // so a dropped special edge cannot reappear via another copy.
  for (std::size_t i = 0; i < inst_.special_full.size(); ++i) {
    for (std::size_t e = 0; e < inst_.special_full[i].size(); ++e) {
      if (!inst_.bits.get(i, inst_.j_star, e)) {
        const Edge& edge = inst_.special_full[i][e];
        EXPECT_FALSE(inst_.g.has_edge(edge.u, edge.v));
      }
    }
  }
}

TEST_P(DmmStructure, EdgeCountMatchesSurvivalBits) {
  // Every surviving base edge appears; public-public edges may coincide
  // across copies, so the union is at most the sum but at least the
  // per-copy max. Here we check the exact count via re-expansion.
  std::set<std::pair<Vertex, Vertex>> expected;
  const DmmParameters& p = inst_.params;
  const std::vector<Vertex> v_star = base_.matching_vertices(inst_.j_star);
  std::vector<std::uint32_t> star_pos(p.big_n, 0xffffffffu);
  for (std::size_t l = 0; l < v_star.size(); ++l) star_pos[v_star[l]] = static_cast<std::uint32_t>(l);
  std::vector<std::uint32_t> public_pos(p.big_n, 0xffffffffu);
  std::uint32_t next = 0;
  for (Vertex b = 0; b < p.big_n; ++b) {
    if (star_pos[b] == 0xffffffffu) public_pos[b] = next++;
  }
  for (std::uint64_t i = 0; i < p.k; ++i) {
    for (std::uint64_t j = 0; j < p.t; ++j) {
      for (std::uint64_t e = 0; e < p.r; ++e) {
        if (!inst_.bits.get(i, j, e)) continue;
        const Edge& be = base_.matchings[j][e];
        auto map = [&](Vertex b) {
          return star_pos[b] != 0xffffffffu
                     ? inst_.unique_final[i][star_pos[b]]
                     : inst_.public_final[public_pos[b]];
        };
        const Edge fe = Edge{map(be.u), map(be.v)}.normalized();
        expected.insert({fe.u, fe.v});
      }
    }
  }
  EXPECT_EQ(inst_.g.num_edges(), expected.size());
}

TEST_P(DmmStructure, PublicVerticesSharedAcrossCopies) {
  // A public vertex's neighborhood can contain unique vertices from
  // multiple different copies — that is the whole point of sharing.
  const DmmParameters& p = inst_.params;
  std::size_t public_with_multi_copy_neighbors = 0;
  for (Vertex v = 0; v < p.n; ++v) {
    if (!inst_.is_public[v]) continue;
    std::set<std::uint64_t> copies;
    for (Vertex w : inst_.g.neighbors(v)) {
      if (inst_.is_public[w]) continue;
      for (std::uint64_t i = 0; i < p.k; ++i) {
        for (Vertex u : inst_.unique_final[i]) {
          if (u == w) copies.insert(i);
        }
      }
    }
    if (copies.size() >= 2) ++public_with_multi_copy_neighbors;
  }
  EXPECT_GT(public_with_multi_copy_neighbors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmmStructure, ::testing::Values(11, 22, 33));

TEST(Dmm, DeterministicBuildReproducible) {
  const rs::RsGraph base = rs::book_rs(2, 2);
  const DmmParameters p = dmm_parameters(base, 2);
  std::vector<Vertex> sigma(p.n);
  std::iota(sigma.begin(), sigma.end(), 0u);
  const EdgeBits bits = EdgeBits::from_mask(2, 2, 2, 0xAB);
  const DmmInstance a = build_dmm(base, 2, 1, bits, sigma);
  const DmmInstance b = build_dmm(base, 2, 1, bits, sigma);
  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.special_full, b.special_full);
}

TEST(Dmm, CountUniqueUnique) {
  const rs::RsGraph base = rs::book_rs(1, 2);
  util::Rng rng(5);
  const DmmInstance inst = sample_dmm(base, 2, rng);
  // All surviving special edges are unique-unique by construction.
  const graph::Matching all = inst.all_surviving_special();
  EXPECT_EQ(count_unique_unique(inst, all), all.size());
}

}  // namespace
}  // namespace ds::lowerbound
