// Parameterized structural properties of D_MM across the (m, k) grid —
// the invariants every later experiment silently relies on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lowerbound/dmm.h"
#include "lowerbound/players.h"
#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

using graph::Edge;
using graph::Vertex;

struct GridPoint {
  std::uint64_t m;
  std::uint64_t k;
  std::uint64_t seed;
};

class DmmGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  void SetUp() override {
    static std::map<std::uint64_t, rs::RsGraph> cache;
    const GridPoint p = GetParam();
    auto [it, inserted] = cache.try_emplace(p.m);
    if (inserted) it->second = rs::rs_graph(p.m);
    base_ = &it->second;
    util::Rng rng(p.seed);
    inst_ = sample_dmm(*base_, p.k, rng);
  }
  const rs::RsGraph* base_ = nullptr;
  DmmInstance inst_;
};

TEST_P(DmmGrid, ParameterFormulas) {
  const DmmParameters& p = inst_.params;
  EXPECT_EQ(p.big_n, base_->num_vertices());
  EXPECT_EQ(p.r, base_->r());
  EXPECT_EQ(p.t, base_->t());
  EXPECT_EQ(p.n, p.big_n - 2 * p.r + 2 * p.r * p.k);
  EXPECT_EQ(p.num_public() + p.num_unique(), p.n);
}

TEST_P(DmmGrid, EdgeCountNeverExceedsSurvivals) {
  // Union can merge coincident public-public edges across copies, so
  // |E(G)| <= total survived; and every surviving special edge is
  // present exactly.
  std::size_t survived = 0;
  const DmmParameters& p = inst_.params;
  for (std::uint64_t i = 0; i < p.k; ++i) {
    for (std::uint64_t j = 0; j < p.t; ++j) {
      for (std::uint64_t e = 0; e < p.r; ++e) {
        survived += inst_.bits.get(i, j, e);
      }
    }
  }
  EXPECT_LE(inst_.g.num_edges(), survived);
  EXPECT_GE(inst_.g.num_edges(), survived / p.k);  // crude lower bound
}

TEST_P(DmmGrid, SpecialMatchingsDisjointAcrossCopies) {
  std::set<Vertex> seen;
  for (const auto& m : inst_.special_full) {
    for (const Edge& e : m) {
      EXPECT_TRUE(seen.insert(e.u).second);
      EXPECT_TRUE(seen.insert(e.v).second);
    }
  }
}

TEST_P(DmmGrid, SpecialSurvivingConsistentWithBits) {
  const DmmParameters& p = inst_.params;
  for (std::uint64_t i = 0; i < p.k; ++i) {
    std::size_t expected = 0;
    for (std::uint64_t e = 0; e < p.r; ++e) {
      expected += inst_.bits.get(i, inst_.j_star, e);
    }
    EXPECT_EQ(inst_.special_surviving[i].size(), expected);
  }
}

TEST_P(DmmGrid, UniqueVerticesHaveNoCrossCopyEdges) {
  // A unique vertex of copy i may neighbor public vertices and copy-i
  // uniques only.
  const DmmParameters& p = inst_.params;
  std::vector<std::uint64_t> copy_of(p.n, ~0ULL);
  for (std::uint64_t i = 0; i < p.k; ++i) {
    for (Vertex v : inst_.unique_final[i]) copy_of[v] = i;
  }
  for (const Edge& e : inst_.g.edges()) {
    const std::uint64_t cu = copy_of[e.u];
    const std::uint64_t cv = copy_of[e.v];
    if (cu != ~0ULL && cv != ~0ULL) {
      EXPECT_EQ(cu, cv) << "cross-copy unique-unique edge";
    }
  }
}

TEST_P(DmmGrid, RefinedPlayerCountFormula) {
  const auto players = build_refined_players(inst_);
  const DmmParameters& p = inst_.params;
  EXPECT_EQ(players.size(), p.num_public() + p.k * p.big_n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DmmGrid,
    ::testing::Values(GridPoint{4, 2, 1}, GridPoint{4, 8, 2},
                      GridPoint{6, 6, 3}, GridPoint{8, 3, 4},
                      GridPoint{8, 8, 5}, GridPoint{12, 12, 6},
                      GridPoint{12, 30, 7}, GridPoint{16, 16, 8}));

}  // namespace
}  // namespace ds::lowerbound
