#include "lowerbound/claims.h"

#include <gtest/gtest.h>

#include "graph/matching.h"
#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

using graph::Matching;

class Claim31 : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Claim 3.1's counting argument needs k*r/3 - (N - 2r) >= k*r/4, which
  // at the paper's k = t only holds once r > 36 (i.e. large N).  The
  // proof is agnostic to the k = t coupling, so the unit test scales k up
  // (k = 150 with m = 12: k*r/3 - 45 comfortably above k*r/4) — the bench
  // explores the k = t regime at larger m.
  void SetUp() override {
    base_ = rs::rs_graph(12);  // r = |S(12)| = 6, t = 12, N = 57
    util::Rng rng(GetParam());
    inst_ = sample_dmm(base_, /*k=*/150, rng);
  }
  rs::RsGraph base_;
  DmmInstance inst_;
};

TEST_P(Claim31, HoldsForCanonicalGreedyMatching) {
  const Matching m = graph::greedy_matching(inst_.g);
  ASSERT_TRUE(graph::is_maximal_matching(inst_.g, m));
  const Claim31Audit audit = audit_claim31(inst_, m);
  EXPECT_TRUE(audit.claim_holds)
      << audit.unique_unique << " < " << audit.threshold;
  EXPECT_EQ(audit.forced_edges_missing, 0u);
}

TEST_P(Claim31, HoldsForRandomGreedyMatchings) {
  util::Rng rng(GetParam() + 1000);
  for (int rep = 0; rep < 5; ++rep) {
    const Matching m = graph::greedy_matching_random(inst_.g, rng);
    const Claim31Audit audit = audit_claim31(inst_, m);
    EXPECT_TRUE(audit.claim_holds);
    EXPECT_EQ(audit.forced_edges_missing, 0u);
  }
}

TEST_P(Claim31, HoldsEvenForAdversarialMatching) {
  // The matching engineered to touch public vertices first — the worst
  // case the claim's counting argument must survive.
  const Matching m = adversarial_maximal_matching(inst_);
  ASSERT_TRUE(graph::is_maximal_matching(inst_.g, m));
  const Claim31Audit audit = audit_claim31(inst_, m);
  EXPECT_TRUE(audit.claim_holds)
      << "adversarial matching got unique-unique down to "
      << audit.unique_unique << " (threshold " << audit.threshold << ")";
  EXPECT_EQ(audit.forced_edges_missing, 0u);
}

TEST_P(Claim31, ChernoffEventHolds) {
  // |union M_i| >= k*r/3 — at these sizes the failure probability is
  // astronomically small.
  const Claim31Audit audit =
      audit_claim31(inst_, graph::greedy_matching(inst_.g));
  EXPECT_TRUE(audit.chernoff_event);
  // And the union size concentrates near k*r/2.
  const double expected =
      static_cast<double>(inst_.params.k * inst_.params.r) / 2.0;
  EXPECT_NEAR(static_cast<double>(audit.union_special_size), expected,
              0.2 * expected);
}

TEST_P(Claim31, SurvivingSpecialEdgesAreForcedIntoAnyMaximalMatching) {
  // The induced-matching property makes every surviving special edge
  // with both endpoints unmatched an immediate maximality violation; the
  // audit counts those. A maximal matching must therefore contain every
  // special edge whose endpoints it doesn't otherwise touch — check the
  // stronger containment statement for unique-unique edges directly.
  const Matching m = adversarial_maximal_matching(inst_);
  const std::vector<bool> matched =
      graph::matched_set(m, inst_.params.n);
  for (const Matching& mi : inst_.special_surviving) {
    for (const graph::Edge& e : mi) {
      EXPECT_TRUE(matched[e.u] || matched[e.v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Claim31, ::testing::Values(1, 2, 3, 4, 5));

TEST(Claim31Bound, FailureBoundShape) {
  const rs::RsGraph base = rs::rs_graph(12);
  const DmmParameters p = dmm_parameters(base, base.t());
  const double bound = claim31_failure_bound(p);
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 0.01);  // 2^{-kr/10} with k*r = 72 at m = 12
  // Doubling k squares... halves the exponent base: monotone decreasing.
  const DmmParameters p2 = dmm_parameters(base, 2 * base.t());
  EXPECT_LT(claim31_failure_bound(p2), bound);
}

}  // namespace
}  // namespace ds::lowerbound
