#include "lowerbound/protocol_search.h"

#include <gtest/gtest.h>

#include "rs/rs_graph.h"

namespace ds::lowerbound {
namespace {

TEST(ProtocolSearch, OneBitClassOnMiniInstance) {
  // book(1,2), k=2: a leaf player's degree IS its survival bit, so the
  // identity degree-table (parity) solves the instance — the search must
  // find success 1.0 among the 16 x 16 one-bit protocols.
  const rs::RsGraph base = rs::book_rs(1, 2);
  const ProtocolSearchResult r =
      search_degree_protocols(base, 2, /*bits=*/1, /*degree_cap=*/3);
  EXPECT_EQ(r.protocols_searched, 256u);
  EXPECT_NEAR(r.best_success, 1.0, 1e-9);
  EXPECT_NEAR(r.silent_baseline, 0.25, 1e-12);
  EXPECT_LE(r.best_success, r.fano_cap_at_best + 1e-9);
}

TEST(ProtocolSearch, BestDominatesNamedEncodersInClass) {
  const rs::RsGraph base = rs::book_rs(1, 2);
  const ProtocolSearchResult best =
      search_degree_protocols(base, 2, 1, 3);
  // Silent and parity are members of the class; the optimum dominates.
  const SilentEncoder silent;
  const ParityEncoder parity;
  EXPECT_GE(best.best_success,
            optimal_referee_success(base, 2, silent).optimal_success - 1e-9);
  EXPECT_GE(best.best_success,
            optimal_referee_success(base, 2, parity).optimal_success - 1e-9);
}

TEST(ProtocolSearch, CycleInstanceDefeatsEveryDegreeProtocol) {
  // On C6 every vertex has two matching slots, so degrees cannot pin the
  // edges down: the alternating survival patterns {e1,e3,e5} and
  // {e2,e4,e6} produce IDENTICAL degree transcripts, and the MAP referee
  // must err on one of them. The exhaustive search certifies: the best
  // of all 256 one-bit degree protocols achieves exactly 7/8.
  const rs::RsGraph base = rs::cycle_rs(3);
  ASSERT_TRUE(rs::verify_rs(base));
  const ProtocolSearchResult r =
      search_degree_protocols(base, 1, /*bits=*/1, /*degree_cap=*/3);
  EXPECT_NEAR(r.best_success, 0.875, 1e-9);
  EXPECT_GT(r.best_success, r.silent_baseline);
  EXPECT_LE(r.best_success, r.fano_cap_at_best + 1e-9);
  // Two bits shrink but do not eliminate the gap.
  const ProtocolSearchResult r2 =
      search_degree_protocols(base, 1, /*bits=*/2, /*degree_cap=*/2);
  EXPECT_GT(r2.best_success, r.best_success);
  EXPECT_LT(r2.best_success, 1.0 - 1e-9);
}

TEST(CycleRs, IsValidRsFamily) {
  for (std::uint32_t t : {3u, 4u, 6u, 10u}) {
    const rs::RsGraph rs = rs::cycle_rs(t);
    EXPECT_EQ(rs.num_vertices(), 2 * t);
    EXPECT_EQ(rs.r(), 2u);
    EXPECT_EQ(rs.t(), t);
    EXPECT_TRUE(rs::verify_rs(rs)) << "t=" << t;
  }
}

TEST(ProtocolSearch, FinerDegreeTablesNeverHurt) {
  // The cap-1 class (2 states) embeds into the cap-3 class (4 states),
  // so the optimum is monotone in the cap.
  const rs::RsGraph base = rs::book_rs(2, 2);
  const double coarse =
      search_degree_protocols(base, 2, 1, /*degree_cap=*/1).best_success;
  const double fine =
      search_degree_protocols(base, 2, 1, /*degree_cap=*/3).best_success;
  EXPECT_GE(fine, coarse - 1e-9);
}

TEST(DegreeTableEncoder, EncodesTableValues) {
  const DegreeTableEncoder encoder(2, {0, 1, 2, 3}, {3, 2, 1, 0});
  DmmParameters params{};
  RefinedPlayer player;
  player.is_public = false;
  player.edges = {{0, 1}};  // degree 1 -> unique_table[1] == 2
  util::BitWriter w;
  encoder.encode(params, player, w);
  EXPECT_EQ(w.bit_count(), 2u);
  const util::BitString bits(w);
  util::BitReader r(bits);
  EXPECT_EQ(r.get_bits(2), 2u);
}

}  // namespace
}  // namespace ds::lowerbound
