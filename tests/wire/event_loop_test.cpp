// The epoll event loop against the blocking transport's contract: the
// same framing, the same failure taxonomy, the same syscall hooks.
//
// The core claim (docs/WIRE.md) is that a peer cannot tell an EventLoop
// connection from a blocking TcpLink — so these tests drive the loop
// through socketpair() peers byte at a time, with injected EINTR/EAGAIN
// and truncations, and assert the loop reassembles exactly the messages
// (and reports exactly the failure modes) the whole-message TcpLink path
// produces for the same bytes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "evloop/event_loop.h"
#include "obs/obs.h"
#include "wire/frame.h"
#include "wire/tcp.h"
#include "wire/test_hooks.h"

namespace ds {
namespace {

using namespace std::chrono_literals;

// Hook scratch state (capture-less lambdas only convert to the hook
// function-pointer types); each test resets what it uses.
std::atomic<int> g_fail_remaining{0};
std::atomic<int> g_send_budget{0};  // bytes a hooked send may deliver

std::vector<std::uint8_t> frame_bytes(const std::vector<std::uint8_t>& body) {
  const auto len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> bytes(4 + body.size());
  bytes[0] = static_cast<std::uint8_t>(len);
  bytes[1] = static_cast<std::uint8_t>(len >> 8);
  bytes[2] = static_cast<std::uint8_t>(len >> 16);
  bytes[3] = static_cast<std::uint8_t>(len >> 24);
  std::copy(body.begin(), body.end(), bytes.begin() + 4);
  return bytes;
}

void write_raw(int fd, const std::vector<std::uint8_t>& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

/// One received message or close event, in arrival order.
struct LoopEvents {
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> messages;
  std::vector<std::pair<std::size_t, wire::RecvStatus>> closes;

  wire::EventLoop::MessageFn on_message() {
    return [this](std::size_t conn, std::vector<std::uint8_t> message) {
      messages.emplace_back(conn, std::move(message));
    };
  }
  wire::EventLoop::CloseFn on_close() {
    return [this](std::size_t conn, wire::RecvStatus reason) {
      closes.emplace_back(conn, reason);
    };
  }
};

class EventLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::reset();
    if (!obs::metrics_enabled()) {
      GTEST_SKIP() << "observability compiled out (DISTSKETCH_OBS=OFF)";
    }
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    conn_ = loop_.add(fds[0]);
    peer_fd_ = fds[1];
    g_fail_remaining.store(0);
    g_send_budget.store(0);
  }

  void TearDown() override {
    wire::testhooks::reset();
    close_peer();
    obs::set_metrics_enabled(false);
  }

  void close_peer() {
    if (peer_fd_ >= 0) ::close(peer_fd_);
    peer_fd_ = -1;
  }

  /// Poll until `events.messages` holds `want` messages or ~2s pass.
  void poll_until_messages(LoopEvents& events, std::size_t want) {
    const auto give_up = std::chrono::steady_clock::now() + 2s;
    while (events.messages.size() < want &&
           std::chrono::steady_clock::now() < give_up) {
      loop_.poll_once(10ms, events.on_message(), events.on_close());
    }
  }

  wire::EventLoop loop_;
  std::size_t conn_ = 0;
  int peer_fd_ = -1;
};

TEST_F(EventLoopTest, ByteAtATimeReassemblyMatchesWholeMessage) {
  // The same bytes a blocking TcpLink would hand up as one message,
  // dripped one byte per readiness event: identical reassembly.
  const std::vector<std::uint8_t> body{7, 0, 42, 255, 1, 2, 3};
  const std::vector<std::uint8_t> framed = frame_bytes(body);
  LoopEvents events;
  for (const std::uint8_t byte : framed) {
    write_raw(peer_fd_, {byte});
    loop_.poll_once(50ms, events.on_message(), events.on_close());
  }
  poll_until_messages(events, 1);
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].first, conn_);
  EXPECT_EQ(events.messages[0].second, body);
  EXPECT_TRUE(events.closes.empty());
  EXPECT_EQ(loop_.bytes_received(), framed.size());
}

TEST_F(EventLoopTest, ManyMessagesInOneReadinessEventAllArriveInOrder) {
  // A pipelining client corks several messages into one TCP segment; a
  // single drain must peel them all off, in order.
  std::vector<std::uint8_t> wire_bytes;
  for (std::uint8_t i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> framed =
        frame_bytes({i, static_cast<std::uint8_t>(i + 1)});
    wire_bytes.insert(wire_bytes.end(), framed.begin(), framed.end());
  }
  write_raw(peer_fd_, wire_bytes);
  LoopEvents events;
  poll_until_messages(events, 5);
  ASSERT_EQ(events.messages.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events.messages[i].second,
              (std::vector<std::uint8_t>{i, static_cast<std::uint8_t>(i + 1)}));
  }
}

TEST_F(EventLoopTest, ZeroLengthMessageIsDelivered) {
  write_raw(peer_fd_, frame_bytes({}));
  LoopEvents events;
  poll_until_messages(events, 1);
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_TRUE(events.messages[0].second.empty());
}

TEST_F(EventLoopTest, RecvEintrIsRetriedTransparently) {
  g_fail_remaining.store(2);
  wire::testhooks::set_recv(
      +[](int fd, void* buf, std::size_t len, int flags) -> ssize_t {
        if (g_fail_remaining.fetch_sub(1) > 0) {
          errno = EINTR;
          return -1;
        }
        return ::recv(fd, buf, len, flags);
      });
  write_raw(peer_fd_, frame_bytes({1, 2, 3}));
  LoopEvents events;
  poll_until_messages(events, 1);
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].second, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(obs::counter("wire.evloop.eintr_retries").value(), 2u);
}

TEST_F(EventLoopTest, InjectedEagainMidBodySuspendsAndResumes) {
  // EAGAIN mid-body must suspend the state machine (not error, not
  // drop) and the next readiness pass must resume exactly where it
  // stopped — the partial-read analogue of TimeoutKeepsPartialProgress
  // in the blocking suite.
  g_fail_remaining.store(1);
  wire::testhooks::set_recv(
      +[](int fd, void* buf, std::size_t len, int flags) -> ssize_t {
        if (len > 4 && g_fail_remaining.fetch_sub(1) > 0) {
          // First body read only: pretend the socket ran dry.
          errno = EAGAIN;
          return -1;
        }
        return ::recv(fd, buf, len, flags);
      });
  const std::vector<std::uint8_t> body{9, 9, 9, 9, 9, 9, 9, 9};
  write_raw(peer_fd_, frame_bytes(body));
  LoopEvents events;
  poll_until_messages(events, 1);
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].second, body);
  EXPECT_TRUE(events.closes.empty());
}

TEST_F(EventLoopTest, OversizedPrefixIsRejectedBeforeAllocating) {
  const std::uint32_t len = wire::kMaxMessageBytes + 1;
  write_raw(peer_fd_, {static_cast<std::uint8_t>(len),
                       static_cast<std::uint8_t>(len >> 8),
                       static_cast<std::uint8_t>(len >> 16),
                       static_cast<std::uint8_t>(len >> 24)});
  LoopEvents events;
  loop_.poll_once(500ms, events.on_message(), events.on_close());
  ASSERT_EQ(events.closes.size(), 1u);
  EXPECT_EQ(events.closes[0].second, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.evloop.oversized_prefix").value(), 1u);
  EXPECT_EQ(loop_.open_connections(), 0u);
  EXPECT_FALSE(loop_.is_open(conn_));
}

TEST_F(EventLoopTest, EofMidBodyIsShortReadError) {
  std::vector<std::uint8_t> partial =
      frame_bytes(std::vector<std::uint8_t>(10, 1));
  partial.resize(4 + 3);  // prefix promises 10 body bytes, deliver 3
  write_raw(peer_fd_, partial);
  close_peer();
  LoopEvents events;
  loop_.poll_once(500ms, events.on_message(), events.on_close());
  ASSERT_EQ(events.closes.size(), 1u);
  EXPECT_EQ(events.closes[0].second, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.evloop.short_reads").value(), 1u);
  EXPECT_TRUE(events.messages.empty());
}

TEST_F(EventLoopTest, CloseAtMessageBoundaryIsClean) {
  // A complete message then EOF: the message arrives, then a kClosed —
  // the same clean/short distinction the blocking link draws.
  const std::vector<std::uint8_t> body{4, 4, 4};
  write_raw(peer_fd_, frame_bytes(body));
  close_peer();
  LoopEvents events;
  loop_.poll_once(500ms, events.on_message(), events.on_close());
  ASSERT_EQ(events.messages.size(), 1u);
  EXPECT_EQ(events.messages[0].second, body);
  ASSERT_EQ(events.closes.size(), 1u);
  EXPECT_EQ(events.closes[0].second, wire::RecvStatus::kClosed);
  EXPECT_EQ(obs::counter("wire.evloop.clean_closes").value(), 1u);
  EXPECT_EQ(obs::counter("wire.evloop.short_reads").value(), 0u);
}

TEST_F(EventLoopTest, SendIsByteIdenticalToBlockingLink) {
  // A blocking TcpLink on the peer end must parse the loop's output as
  // one ordinary message: same prefix, same body, same accounting.
  const std::vector<std::uint8_t> body{11, 22, 33, 44};
  ASSERT_TRUE(loop_.send(conn_, body));
  LoopEvents events;
  ASSERT_TRUE(loop_.flush_all(std::chrono::steady_clock::now() + 2s,
                              events.on_message(), events.on_close()));
  std::unique_ptr<wire::Link> peer = wire::tcp_adopt_fd(peer_fd_);
  peer_fd_ = -1;  // ownership moved
  const wire::RecvResult r = peer->recv(2000ms);
  ASSERT_EQ(r.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r.message, body);
  EXPECT_EQ(loop_.bytes_sent(), 4 + body.size());
}

TEST_F(EventLoopTest, BackloggedWritesDrainViaEpollout) {
  // A send hook that trickles 3 bytes per call (EAGAIN between calls)
  // forces the backlog/EPOLLOUT path; the peer must still read every
  // message intact and in order.
  g_send_budget.store(0);
  wire::testhooks::set_send(
      +[](int fd, const void* buf, std::size_t len, int flags) -> ssize_t {
        if (g_send_budget.fetch_add(1) % 2 == 0) {
          errno = EAGAIN;
          return -1;
        }
        return ::send(fd, buf, std::min<std::size_t>(len, 3), flags);
      });
  const std::vector<std::uint8_t> first{1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint8_t> second{8, 9};
  ASSERT_TRUE(loop_.send(conn_, first));
  ASSERT_TRUE(loop_.send(conn_, second));
  LoopEvents events;
  ASSERT_TRUE(loop_.flush_all(std::chrono::steady_clock::now() + 5s,
                              events.on_message(), events.on_close()));
  EXPECT_GE(obs::counter("wire.evloop.partial_writes").value(), 1u);

  wire::testhooks::reset();
  std::unique_ptr<wire::Link> peer = wire::tcp_adopt_fd(peer_fd_);
  peer_fd_ = -1;
  const wire::RecvResult r1 = peer->recv(2000ms);
  ASSERT_EQ(r1.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r1.message, first);
  const wire::RecvResult r2 = peer->recv(2000ms);
  ASSERT_EQ(r2.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r2.message, second);
}

TEST_F(EventLoopTest, SketchFramesSurviveTheLoopBitForBit) {
  // End to end at the frame layer: a batch built by the frame codec,
  // sent whole by a blocking link, received by the loop in drips, must
  // decode to identical headers and payloads.
  util::BitWriter w;
  w.put_bits(0b101101, 6);
  const util::BitString payload(std::move(w));
  const wire::FrameHeader header{wire::FrameType::kSketch, 77, 3, 1};
  std::vector<std::uint8_t> batch;
  (void)wire::encode_frame(header, payload, batch);

  std::unique_ptr<wire::Link> peer = wire::tcp_adopt_fd(peer_fd_);
  peer_fd_ = -1;
  ASSERT_TRUE(peer->send(batch));
  LoopEvents events;
  poll_until_messages(events, 1);
  ASSERT_EQ(events.messages.size(), 1u);

  const wire::BatchDecode decoded =
      wire::decode_frames(events.messages[0].second);
  ASSERT_EQ(decoded.status, wire::DecodeStatus::kOk);
  ASSERT_EQ(decoded.frames.size(), 1u);
  EXPECT_EQ(decoded.frames[0].header, header);
  EXPECT_EQ(decoded.frames[0].payload.bit_count(), payload.bit_count());
  EXPECT_EQ(decoded.frames[0].payload.words(), payload.words());
}

}  // namespace
}  // namespace ds
