// Transport behavior, loopback and TCP: whole-message delivery in order,
// timeouts, clean close vs short read, oversized-length rejection, and
// byte counters.  The TCP cases run against a real socket pair on
// 127.0.0.1 so the failure modes are the genuine article.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "wire/loopback.h"
#include "wire/tcp.h"

namespace ds {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> message_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> m;
  for (const int b : bytes) m.push_back(static_cast<std::uint8_t>(b));
  return m;
}

TEST(Loopback, DeliversMessagesInOrderBothWays) {
  wire::LoopbackPair pair = wire::make_loopback_pair();
  ASSERT_TRUE(pair.player_side->send(message_of({1, 2})));
  ASSERT_TRUE(pair.player_side->send(message_of({3})));
  ASSERT_TRUE(pair.referee_side->send(message_of({9})));

  wire::RecvResult first = pair.referee_side->recv(100ms);
  ASSERT_EQ(first.status, wire::RecvStatus::kOk);
  EXPECT_EQ(first.message, message_of({1, 2}));
  wire::RecvResult second = pair.referee_side->recv(100ms);
  ASSERT_EQ(second.status, wire::RecvStatus::kOk);
  EXPECT_EQ(second.message, message_of({3}));

  wire::RecvResult down = pair.player_side->recv(100ms);
  ASSERT_EQ(down.status, wire::RecvStatus::kOk);
  EXPECT_EQ(down.message, message_of({9}));

  EXPECT_EQ(pair.player_side->bytes_sent(), 3u);
  EXPECT_EQ(pair.referee_side->bytes_received(), 3u);
}

TEST(Loopback, TimesOutWhenIdle) {
  wire::LoopbackPair pair = wire::make_loopback_pair();
  const wire::RecvResult r = pair.referee_side->recv(10ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kTimeout);
}

TEST(Loopback, PeerDestructionDrainsThenCloses) {
  wire::LoopbackPair pair = wire::make_loopback_pair();
  ASSERT_TRUE(pair.player_side->send(message_of({5})));
  pair.player_side.reset();
  // The queued message survives the close...
  wire::RecvResult queued = pair.referee_side->recv(100ms);
  ASSERT_EQ(queued.status, wire::RecvStatus::kOk);
  EXPECT_EQ(queued.message, message_of({5}));
  // ...then the close is visible.
  EXPECT_EQ(pair.referee_side->recv(10ms).status, wire::RecvStatus::kClosed);
  EXPECT_FALSE(pair.referee_side->send(message_of({1})));
}

TEST(Tcp, RoundTripOverARealSocket) {
  wire::TcpListener listener;
  std::unique_ptr<wire::Link> client;
  std::thread connector([&] {
    client = wire::tcp_connect("127.0.0.1", listener.port(), 2000ms);
  });
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  connector.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->send(message_of({10, 20, 30})));
  wire::RecvResult up = server->recv(2000ms);
  ASSERT_EQ(up.status, wire::RecvStatus::kOk);
  EXPECT_EQ(up.message, message_of({10, 20, 30}));

  ASSERT_TRUE(server->send(message_of({40})));
  wire::RecvResult down = client->recv(2000ms);
  ASSERT_EQ(down.status, wire::RecvStatus::kOk);
  EXPECT_EQ(down.message, message_of({40}));

  // Counters include the 4-byte transport prefix.
  EXPECT_EQ(client->bytes_sent(), 4u + 3u);
  EXPECT_EQ(server->bytes_received(), 4u + 3u);
}

TEST(Tcp, EmptyMessageIsAValidMessage) {
  wire::TcpListener listener;
  std::unique_ptr<wire::Link> client;
  std::thread connector([&] {
    client = wire::tcp_connect("127.0.0.1", listener.port(), 2000ms);
  });
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  connector.join();
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->send({}));
  const wire::RecvResult r = server->recv(2000ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kOk);
  EXPECT_TRUE(r.message.empty());
}

TEST(Tcp, RecvTimesOutWithoutData) {
  wire::TcpListener listener;
  std::unique_ptr<wire::Link> client;
  std::thread connector([&] {
    client = wire::tcp_connect("127.0.0.1", listener.port(), 2000ms);
  });
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  connector.join();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->recv(20ms).status, wire::RecvStatus::kTimeout);
}

TEST(Tcp, CleanCloseAtBoundaryVsShortReadMidMessage) {
  // Clean close: peer sends a whole message, then disconnects.
  {
    wire::TcpListener listener;
    std::unique_ptr<wire::Link> client;
    std::thread connector([&] {
      client = wire::tcp_connect("127.0.0.1", listener.port(), 2000ms);
    });
    std::unique_ptr<wire::Link> server = listener.accept(2000ms);
    connector.join();
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(client->send(message_of({1})));
    client.reset();  // FIN after a complete message
    EXPECT_EQ(server->recv(2000ms).status, wire::RecvStatus::kOk);
    EXPECT_EQ(server->recv(2000ms).status, wire::RecvStatus::kClosed);
  }
}

TEST(Tcp, LargeMessageSurvivesShortPollingSlices) {
  // Regression: the referee collects with short recv slices; a message
  // bigger than one slice delivers must stay pending across kTimeout
  // returns and eventually arrive intact — early versions declared the
  // stream broken on a mid-message deadline and lost the batch.
  wire::TcpListener listener;
  std::unique_ptr<wire::Link> client;
  std::thread connector([&] {
    client = wire::tcp_connect("127.0.0.1", listener.port(), 2000ms);
  });
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  connector.join();
  ASSERT_NE(server, nullptr);

  std::vector<std::uint8_t> big(8u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([&] { ASSERT_TRUE(client->send(big)); });

  wire::RecvResult r{wire::RecvStatus::kTimeout, {}};
  for (int slice = 0; slice < 20000 && r.status != wire::RecvStatus::kOk;
       ++slice) {
    r = server->recv(1ms);
    ASSERT_NE(r.status, wire::RecvStatus::kError) << "slice " << slice;
    ASSERT_NE(r.status, wire::RecvStatus::kClosed) << "slice " << slice;
  }
  sender.join();
  ASSERT_EQ(r.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r.message, big);
}

namespace raw {

/// A misbehaving client the Link interface cannot express: writes
/// arbitrary bytes straight to the socket, then closes.
void connect_send_close(std::uint16_t port,
                        const std::vector<std::uint8_t>& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

}  // namespace raw

TEST(Tcp, ShortReadMidMessageIsAnError) {
  // The client's prefix claims 100 bytes but only 2 arrive before FIN:
  // an unrecoverable short read, not a timeout and not a clean close.
  wire::TcpListener listener;
  std::thread client(raw::connect_send_close, listener.port(),
                     message_of({100, 0, 0, 0, 7, 7}));
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  client.join();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->recv(2000ms).status, wire::RecvStatus::kError);
}

TEST(Tcp, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  // 0xFFFFFFFF-byte claim: reject at the prefix, never allocate.
  wire::TcpListener listener;
  std::thread client(raw::connect_send_close, listener.port(),
                     message_of({0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}));
  std::unique_ptr<wire::Link> server = listener.accept(2000ms);
  client.join();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->recv(2000ms).status, wire::RecvStatus::kError);
}

TEST(Tcp, ConnectToClosedPortFails) {
  std::uint16_t dead_port = 1;
  {
    wire::TcpListener listener;
    dead_port = listener.port();
  }  // listener destroyed; the port is closed
  EXPECT_THROW((void)wire::tcp_connect("127.0.0.1", dead_port, 500ms),
               wire::WireError);
}

TEST(Tcp, ListenerAcceptTimesOut) {
  wire::TcpListener listener;
  EXPECT_EQ(listener.accept(20ms), nullptr);
}

}  // namespace
}  // namespace ds
