// Deterministic failure injection for the TCP transport, via the syscall
// hooks in wire/test_hooks.h and a socketpair() peer (wire::tcp_adopt_fd).
// Every documented failure mode (docs/WIRE.md's cause -> RecvStatus ->
// counter table) is produced on demand and asserted to map to the right
// RecvStatus AND bump the right wire.tcp.* counter — including the two
// regressions this suite exists for:
//
//   * a poll() hard failure used to be reported as kTimeout, so the
//     session loop would spin on a dead fd until the round deadline
//     (PollHardFailureMapsToErrorNotTimeout),
//   * a send that failed after a partial write did not latch the link,
//     so a retried send would emit a fresh length prefix into the middle
//     of the half-sent frame and silently desync the framing
//     (RetriedSendAfterFailureCannotDesyncFraming).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "wire/tcp.h"
#include "wire/test_hooks.h"

namespace ds {
namespace {

using namespace std::chrono_literals;

// Hook scratch state.  Capture-less lambdas only convert to the hook
// function-pointer types, so per-test behavior lives here; each test
// resets what it uses.
std::atomic<int> g_fail_remaining{0};
std::atomic<int> g_send_calls{0};

std::vector<std::uint8_t> frame_bytes(const std::vector<std::uint8_t>& body) {
  const auto len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> bytes(4 + body.size());
  bytes[0] = static_cast<std::uint8_t>(len);
  bytes[1] = static_cast<std::uint8_t>(len >> 8);
  bytes[2] = static_cast<std::uint8_t>(len >> 16);
  bytes[3] = static_cast<std::uint8_t>(len >> 24);
  std::copy(body.begin(), body.end(), bytes.begin() + 4);
  return bytes;
}

void write_raw(int fd, const std::vector<std::uint8_t>& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

class FailureInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::reset();
    if (!obs::metrics_enabled()) {
      GTEST_SKIP() << "observability compiled out (DISTSKETCH_OBS=OFF)";
    }
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    link_ = wire::tcp_adopt_fd(fds[0]);
    peer_fd_ = fds[1];
    g_fail_remaining.store(0);
    g_send_calls.store(0);
  }

  void TearDown() override {
    wire::testhooks::reset();
    close_peer();
    link_.reset();
    obs::set_metrics_enabled(false);
  }

  void close_peer() {
    if (peer_fd_ >= 0) ::close(peer_fd_);
    peer_fd_ = -1;
  }

  std::unique_ptr<wire::Link> link_;
  int peer_fd_ = -1;
};

TEST_F(FailureInjection, PollHardFailureMapsToErrorNotTimeout) {
  // Pre-fix, a poll() failure fell into the timeout branch: recv reported
  // kTimeout and the caller kept polling a dead fd.
  wire::testhooks::set_poll(+[](pollfd*, nfds_t, int) -> int {
    errno = EBADF;
    return -1;
  });
  const wire::RecvResult r = link_->recv(100ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.tcp.poll_errors").value(), 1u);
  EXPECT_EQ(obs::counter("wire.tcp.recv_timeouts").value(), 0u);

  // The failure latched the link: later recvs fail fast, without
  // touching poll at all.
  wire::testhooks::reset();
  const wire::RecvResult again = link_->recv(10ms);
  EXPECT_EQ(again.status, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.tcp.broken_reuse").value(), 1u);
}

TEST_F(FailureInjection, PollEintrIsRetriedTransparently) {
  g_fail_remaining.store(2);
  wire::testhooks::set_poll(+[](pollfd* fds, nfds_t nfds,
                                int timeout_ms) -> int {
    if (g_fail_remaining.fetch_sub(1) > 0) {
      errno = EINTR;
      return -1;
    }
    return ::poll(fds, nfds, timeout_ms);
  });
  write_raw(peer_fd_, frame_bytes({1, 2, 3}));
  const wire::RecvResult r = link_->recv(2000ms);
  ASSERT_EQ(r.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r.message, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(obs::counter("wire.tcp.eintr_retries").value(), 2u);
}

TEST_F(FailureInjection, RecvEintrMidMessageIsRetried) {
  g_fail_remaining.store(1);
  wire::testhooks::set_recv(
      +[](int fd, void* buf, std::size_t len, int flags) -> ssize_t {
        if (g_fail_remaining.fetch_sub(1) > 0) {
          errno = EINTR;
          return -1;
        }
        return ::recv(fd, buf, len, flags);
      });
  write_raw(peer_fd_, frame_bytes({9, 8, 7, 6}));
  const wire::RecvResult r = link_->recv(2000ms);
  ASSERT_EQ(r.status, wire::RecvStatus::kOk);
  EXPECT_EQ(r.message, (std::vector<std::uint8_t>{9, 8, 7, 6}));
  EXPECT_GE(obs::counter("wire.tcp.eintr_retries").value(), 1u);
}

TEST_F(FailureInjection, SendEintrMidMessageIsRetried) {
  g_fail_remaining.store(1);
  wire::testhooks::set_send(
      +[](int fd, const void* buf, std::size_t len, int flags) -> ssize_t {
        if (g_fail_remaining.fetch_sub(1) > 0) {
          errno = EINTR;
          return -1;
        }
        return ::send(fd, buf, len, flags);
      });
  const std::vector<std::uint8_t> body{5, 5, 5, 5, 5};
  ASSERT_TRUE(link_->send(body));
  EXPECT_GE(obs::counter("wire.tcp.eintr_retries").value(), 1u);

  wire::testhooks::reset();
  std::vector<std::uint8_t> got(frame_bytes(body).size(), 0);
  ASSERT_EQ(::recv(peer_fd_, got.data(), got.size(), 0),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, frame_bytes(body));
}

TEST_F(FailureInjection, RetriedSendAfterFailureCannotDesyncFraming) {
  // Call 1 delivers the 4-byte prefix, call 2 delivers only half the
  // body, call 3 fails hard: the peer is now stranded mid-frame.
  wire::testhooks::set_send(
      +[](int fd, const void* buf, std::size_t len, int flags) -> ssize_t {
        const int call = g_send_calls.fetch_add(1) + 1;
        if (call == 1) return ::send(fd, buf, len, flags);
        if (call == 2) return ::send(fd, buf, len / 2, flags);
        errno = ECONNRESET;
        return -1;
      });
  const std::vector<std::uint8_t> body(64, 0xAB);
  EXPECT_FALSE(link_->send(body));
  EXPECT_EQ(obs::counter("wire.tcp.send_failures").value(), 1u);
  EXPECT_EQ(obs::counter("wire.tcp.partial_writes").value(), 1u);
  EXPECT_EQ(link_->bytes_sent(), 0u);  // failed sends are never charged

  // Pre-fix, this retry wrote a fresh "[len][body...]" into the middle
  // of the half-sent frame.  Now the link is latched broken: the retry
  // fails fast without a single syscall.
  const int calls_before = g_send_calls.load();
  EXPECT_FALSE(link_->send(body));
  EXPECT_EQ(g_send_calls.load(), calls_before);
  EXPECT_EQ(obs::counter("wire.tcp.broken_reuse").value(), 1u);

  // What the peer sees is a short read mid-frame — an unambiguous error,
  // never a plausible kOk message assembled across the desync.
  wire::testhooks::reset();
  link_.reset();  // close our end so the peer hits EOF
  std::unique_ptr<wire::Link> peer = wire::tcp_adopt_fd(peer_fd_);
  peer_fd_ = -1;  // ownership moved
  const wire::RecvResult r = peer->recv(2000ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.tcp.short_reads").value(), 1u);
}

TEST_F(FailureInjection, OversizedPrefixIsRejectedBeforeAllocating) {
  const std::uint32_t len = wire::kMaxMessageBytes + 1;
  write_raw(peer_fd_,
            {static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
             static_cast<std::uint8_t>(len >> 16),
             static_cast<std::uint8_t>(len >> 24)});
  const wire::RecvResult r = link_->recv(2000ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.tcp.oversized_prefix").value(), 1u);
}

TEST_F(FailureInjection, EofMidBodyIsShortReadError) {
  std::vector<std::uint8_t> partial = frame_bytes(std::vector<std::uint8_t>(10, 1));
  partial.resize(4 + 3);  // prefix promises 10 body bytes, deliver 3
  write_raw(peer_fd_, partial);
  close_peer();
  const wire::RecvResult r = link_->recv(2000ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kError);
  EXPECT_EQ(obs::counter("wire.tcp.short_reads").value(), 1u);
}

TEST_F(FailureInjection, CloseAtMessageBoundaryIsClean) {
  close_peer();
  const wire::RecvResult r = link_->recv(2000ms);
  EXPECT_EQ(r.status, wire::RecvStatus::kClosed);
  EXPECT_EQ(obs::counter("wire.tcp.clean_closes").value(), 1u);
  EXPECT_EQ(obs::counter("wire.tcp.short_reads").value(), 0u);
}

TEST_F(FailureInjection, TimeoutKeepsPartialProgress) {
  // Half a message, then a timeout, then the rest: the deadline expiring
  // must not discard the bytes already read.
  const std::vector<std::uint8_t> body{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint8_t> framed = frame_bytes(body);
  write_raw(peer_fd_, {framed.begin(), framed.begin() + 6});
  const wire::RecvResult first = link_->recv(50ms);
  EXPECT_EQ(first.status, wire::RecvStatus::kTimeout);
  EXPECT_EQ(obs::counter("wire.tcp.recv_timeouts").value(), 1u);

  write_raw(peer_fd_, {framed.begin() + 6, framed.end()});
  const wire::RecvResult second = link_->recv(2000ms);
  ASSERT_EQ(second.status, wire::RecvStatus::kOk);
  EXPECT_EQ(second.message, body);
}

}  // namespace
}  // namespace ds
