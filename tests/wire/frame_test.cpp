// The frame codec: exact round-trips, self-delimiting batches, the
// payload-vs-framing accounting split, and rejection of every corruption
// class (bad magic, bad version, overlong varints, nonzero padding, CRC
// mismatch, truncation).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "wire/bytes.h"
#include "wire/frame.h"

namespace ds {
namespace {

using wire::DecodeStatus;
using wire::Frame;
using wire::FrameHeader;
using wire::FrameType;

util::BitString random_payload(util::Rng& rng, std::size_t bits) {
  util::BitWriter w;
  for (std::size_t done = 0; done < bits;) {
    const unsigned chunk =
        static_cast<unsigned>(std::min<std::size_t>(64, bits - done));
    std::uint64_t v = rng.next();
    if (chunk < 64) v &= (std::uint64_t{1} << chunk) - 1;
    w.put_bits(v, chunk);
    done += chunk;
  }
  return util::BitString(w);
}

bool same_bits(const util::BitString& a, const util::BitString& b) {
  return a.bit_count() == b.bit_count() && a.words() == b.words();
}

TEST(Varint, RoundTripsAndSizes) {
  const std::uint64_t cases[] = {0,   1,    127,        128,
                                 300, 1u << 20, 0xFFFFFFFFu,
                                 std::uint64_t(-1)};
  for (const std::uint64_t v : cases) {
    wire::ByteWriter w;
    w.put_varint(v);
    EXPECT_EQ(w.size(), wire::varint_size(v));
    wire::ByteReader r(w.bytes());
    const auto got = r.get_varint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Varint, RejectsOverlongEncodings) {
  // 11 continuation bytes: more than any u64 needs.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  wire::ByteReader r(overlong);
  EXPECT_FALSE(r.get_varint().has_value());

  // 10th byte carrying more than the final value bit.
  const std::vector<std::uint8_t> toobig{0x80, 0x80, 0x80, 0x80, 0x80,
                                         0x80, 0x80, 0x80, 0x80, 0x02};
  wire::ByteReader r2(toobig);
  EXPECT_FALSE(r2.get_varint().has_value());
}

TEST(Crc32, KnownVector) {
  // CRC-32/IEEE of "123456789" is the classic check value 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(wire::crc32(data), 0xCBF43926u);
}

TEST(FrameCodec, RoundTripsEveryPayloadAlignment) {
  util::Rng rng(42);
  for (std::size_t bits = 0; bits <= 140; ++bits) {
    const util::BitString payload = random_payload(rng, bits);
    const FrameHeader header{FrameType::kSketch, wire::protocol_id("x"),
                             static_cast<std::uint32_t>(bits), 3};
    std::vector<std::uint8_t> bytes;
    const std::size_t framing = wire::encode_frame(header, payload, bytes);
    EXPECT_EQ(bytes.size(), wire::encoded_frame_size(header, bits));
    EXPECT_EQ(framing, bytes.size() * 8 - bits);

    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::decode_frame(bytes, frame, consumed), DecodeStatus::kOk)
        << bits;
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.header, header);
    EXPECT_TRUE(same_bits(frame.payload, payload)) << bits;
  }
}

TEST(FrameCodec, PayloadBitsAreChargedExactly) {
  // The accounting contract: payload bits on the wire == BitWriter
  // bit_count, independent of byte rounding; framing is everything else.
  util::BitWriter w;
  w.put_bits(0b101, 3);
  const util::BitString payload(w);
  const FrameHeader header{FrameType::kSketch, 1, 2, 0};
  std::vector<std::uint8_t> bytes;
  const std::size_t framing = wire::encode_frame(header, payload, bytes);
  EXPECT_EQ(bytes.size() * 8, framing + 3u);

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_frame(bytes, frame, consumed), DecodeStatus::kOk);
  EXPECT_EQ(frame.payload.bit_count(), 3u);
}

TEST(FrameCodec, BatchOfFramesIsSelfDelimiting) {
  util::Rng rng(7);
  std::vector<std::uint8_t> bytes;
  std::vector<util::BitString> payloads;
  for (std::uint32_t v = 0; v < 9; ++v) {
    payloads.push_back(random_payload(rng, 5 + 13 * v));
    wire::encode_frame({FrameType::kSketch, 99, v, 0}, payloads.back(),
                       bytes);
  }
  const wire::BatchDecode batch = wire::decode_frames(bytes);
  ASSERT_EQ(batch.status, DecodeStatus::kOk);
  ASSERT_EQ(batch.frames.size(), 9u);
  for (std::uint32_t v = 0; v < 9; ++v) {
    EXPECT_EQ(batch.frames[v].header.vertex, v);
    EXPECT_TRUE(same_bits(batch.frames[v].payload, payloads[v]));
  }
}

TEST(FrameCodec, DetectsEveryFlippedBit) {
  // CRC-32 catches all single-bit flips; flip each bit of a whole frame
  // and demand rejection (kBadCrc, or an earlier structural error when
  // the flip hits magic/version/header fields).
  util::Rng rng(11);
  const util::BitString payload = random_payload(rng, 37);
  std::vector<std::uint8_t> bytes;
  wire::encode_frame({FrameType::kSketch, 5, 6, 7}, payload, bytes);
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status =
        wire::decode_frame(corrupt, frame, consumed);
    EXPECT_NE(status, DecodeStatus::kOk) << "flipped bit " << bit;
  }
}

TEST(FrameCodec, ShortReadsWantMoreData) {
  util::Rng rng(13);
  const util::BitString payload = random_payload(rng, 64);
  std::vector<std::uint8_t> bytes;
  wire::encode_frame({FrameType::kBroadcast, 1, 0, 2}, payload, bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = wire::decode_frame(
        std::span<const std::uint8_t>(bytes).subspan(0, len), frame,
        consumed);
    EXPECT_EQ(status, DecodeStatus::kNeedMoreData) << "prefix " << len;
  }
}

TEST(FrameCodec, RejectsNonzeroPaddingBits) {
  // 3 payload bits leave 5 padding bits in the payload byte; setting any
  // of them is information the accounting never charged -> malformed.
  util::BitWriter w;
  w.put_bits(0b111, 3);
  std::vector<std::uint8_t> bytes;
  wire::encode_frame({FrameType::kSketch, 1, 2, 0}, util::BitString(w),
                     bytes);
  // Payload byte is the 4th from the end (CRC is last 4).
  const std::size_t payload_index = bytes.size() - 5;
  bytes[payload_index] |= 0x20;
  // Re-stamp a valid CRC so ONLY the padding rule can reject it.
  const std::uint32_t crc =
      wire::crc32({bytes.data(), bytes.size() - 4});
  for (unsigned i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_frame(bytes, frame, consumed),
            DecodeStatus::kMalformed);
}

TEST(FrameCodec, RejectsBadMagicAndVersion) {
  std::vector<std::uint8_t> bytes;
  wire::encode_frame({FrameType::kSketch, 1, 2, 0}, util::BitString{},
                     bytes);
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 0x00;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(wire::decode_frame(bad, frame, consumed),
              DecodeStatus::kBadMagic);
    EXPECT_EQ(consumed, 1u);  // resync skips one byte
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[1] = wire::kWireVersion + 1;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(wire::decode_frame(bad, frame, consumed),
              DecodeStatus::kBadVersion);
  }
}

TEST(FrameCodec, RejectsOversizedPayloadLengthWithoutAllocating) {
  // Hand-build a frame claiming an absurd payload length; the decoder
  // must refuse at the header, long before any allocation.
  wire::ByteWriter w;
  w.put_u8(wire::kFrameMagic);
  w.put_u8(wire::kWireVersion);
  w.put_varint(static_cast<std::uint64_t>(FrameType::kSketch));
  w.put_varint(1);
  w.put_varint(2);
  w.put_varint(0);
  w.put_varint(wire::kMaxPayloadBits + 1);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_frame(w.bytes(), frame, consumed),
            DecodeStatus::kMalformed);
}

TEST(FrameCodec, BatchStopsAtCorruptionAndKeepsEarlierFrames) {
  util::Rng rng(17);
  std::vector<std::uint8_t> bytes;
  wire::encode_frame({FrameType::kSketch, 9, 0, 0},
                     random_payload(rng, 21), bytes);
  const std::size_t first_len = bytes.size();
  wire::encode_frame({FrameType::kSketch, 9, 1, 0},
                     random_payload(rng, 21), bytes);
  bytes[first_len + 10] ^= 0xFF;  // corrupt the second frame
  const wire::BatchDecode batch = wire::decode_frames(bytes);
  EXPECT_EQ(batch.frames.size(), 1u);
  EXPECT_NE(batch.status, DecodeStatus::kOk);
  EXPECT_EQ(batch.rest_offset, first_len);
}

TEST(FrameCodec, ProtocolIdIsStableAndDiscriminating) {
  EXPECT_EQ(wire::protocol_id("agm-spanning-forest"),
            wire::protocol_id("agm-spanning-forest"));
  EXPECT_NE(wire::protocol_id("agm-spanning-forest"),
            wire::protocol_id("agm-connectivity"));
}

}  // namespace
}  // namespace ds
