#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "graph/generators.h"
#include "protocols/sampled_matching.h"
#include "rs/rs_graph.h"
#include "scenario/registry.h"
#include "scenario/typed.h"

namespace ds::core {
namespace {

using graph::Graph;

TEST(Report, TableAlignsAndPrints) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Report, CsvEscaping) {
  Table table({"name", "value"});
  table.add_row({"with,comma", "with\"quote"});
  table.add_row({"plain", "1"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(),
            "name,value\n\"with,comma\",\"with\"\"quote\"\nplain,1\n");
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(0.12345, 3), "0.123");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "NO");
}

TEST(Sweep, GeometricBudgets) {
  const auto budgets = geometric_budgets(4, 64, 2.0);
  const std::vector<std::size_t> expected{4, 8, 16, 32, 64};
  EXPECT_EQ(budgets, expected);
  const auto with_cap = geometric_budgets(10, 25, 2.0);
  EXPECT_EQ(with_cap.back(), 25u);
  EXPECT_EQ(with_cap.front(), 10u);
}

TEST(Sweep, MatchingSuccessMonotoneInBudget) {
  // On small G(n, p) the budgeted matching protocol's success rate climbs
  // from ~0 to 1 as the budget rises — the harness must see it.  The
  // registered gnp-matching scenario IS that configuration.
  const scenario::Scenario* s = scenario::find("gnp-matching");
  ASSERT_NE(s, nullptr);
  const std::vector<std::size_t> budgets{1, 2048};
  const SweepResult result =
      sweep_budgets(*s, budgets, /*trials=*/10, /*seed=*/7);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_LT(result.points[0].rate, 0.5);
  EXPECT_EQ(result.points[1].rate, 1.0);
  ASSERT_TRUE(result.threshold_budget.has_value());
  EXPECT_EQ(*result.threshold_budget, 2048u);
}

TEST(Sweep, RecordsRealizedBits) {
  const scenario::InlineScenario<model::MatchingOutput> s(
      "bits-probe", "realized-bits probe", 20,
      scenario::Grid{{64}, 3, 9, 0.99},
      [](std::uint64_t seed) {
        util::Rng rng(seed);
        return scenario::Instance{graph::gnp(20, 0.3, rng), nullptr};
      },
      [](std::size_t budget) {
        return std::make_unique<protocols::BudgetedMatching>(budget);
      },
      [](const scenario::Instance&, const model::MatchingOutput&) {
        return true;
      });
  const std::vector<std::size_t> budgets{64};
  const SweepResult result = sweep_budgets(s, budgets, 3, 9);
  EXPECT_LE(result.points[0].max_bits_seen, 64u);
  EXPECT_GT(result.points[0].max_bits_seen, 0u);
}

TEST(Sweep, DefaultGridSweepsByScenarioId) {
  // sweep_scenario runs a registered family's own grid end to end —
  // easy-cc's clusters make maximal matching reachable at modest budgets.
  const scenario::Scenario* s = scenario::find("easy-cc");
  ASSERT_NE(s, nullptr);
  const SweepResult result = sweep_scenario(*s);
  ASSERT_EQ(result.points.size(), s->default_grid().budgets.size());
  ASSERT_TRUE(result.threshold_budget.has_value());
  EXPECT_GE(result.points.back().rate,
            s->default_grid().target_rate);
}

TEST(Experiment, ScoreMatchingTaxonomy) {
  const Graph g = graph::path(4);
  MatchingScore s = score_matching(g, std::vector<graph::Edge>{{0, 1}, {2, 3}});
  EXPECT_TRUE(s.maximal);
  s = score_matching(g, std::vector<graph::Edge>{{0, 1}});
  EXPECT_TRUE(s.valid);
  EXPECT_FALSE(s.maximal);
  s = score_matching(g, std::vector<graph::Edge>{{0, 2}});
  EXPECT_TRUE(s.structurally_matching);
  EXPECT_FALSE(s.valid);
  s = score_matching(g, std::vector<graph::Edge>{{0, 1}, {1, 2}});
  EXPECT_FALSE(s.structurally_matching);
}

TEST(Experiment, ScoreMisTaxonomy) {
  const Graph g = graph::path(4);
  MisScore s = score_mis(g, std::vector<graph::Vertex>{0, 2});
  EXPECT_TRUE(s.maximal);
  s = score_mis(g, std::vector<graph::Vertex>{0});
  EXPECT_TRUE(s.independent);
  EXPECT_FALSE(s.maximal);
  s = score_mis(g, std::vector<graph::Vertex>{0, 1});
  EXPECT_FALSE(s.independent);
}

TEST(Experiment, Remark36Success) {
  const rs::RsGraph base = rs::rs_graph(6);
  util::Rng rng(5);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, base.t(), rng);
  // The full surviving special matching always qualifies (its size
  // concentrates at kr/2 > kr/4).
  EXPECT_TRUE(remark36_success(inst, inst.all_surviving_special()));
  // The empty matching never does (threshold kr/4 >= 1 here).
  ASSERT_GE(inst.params.claim31_threshold(), 1u);
  EXPECT_FALSE(remark36_success(inst, {}));
}

TEST(Experiment, Theorem1BoundArithmetic) {
  const Theorem1Bound bound = theorem1_bound(100);
  EXPECT_EQ(bound.big_n, 497u);
  EXPECT_EQ(bound.t, 100u);
  EXPECT_EQ(bound.k, bound.t);
  EXPECT_GT(bound.r, 10u);
  EXPECT_EQ(bound.n, bound.big_n - 2 * bound.r + 2 * bound.r * bound.k);
  EXPECT_NEAR(bound.info_lower,
              static_cast<double>(bound.k * bound.r) / 6.0, 1e-9);
  // b_lower = kr / (12 N).
  EXPECT_NEAR(bound.b_lower * 12.0 * static_cast<double>(bound.big_n),
              static_cast<double>(bound.k * bound.r), 1e-6);
  // The b = Omega(sqrt n) shape: b_lower should be a constant fraction of
  // sqrt(n) up to the e^{Theta(sqrt(log))} term — sanity: positive and
  // below sqrt(n).
  EXPECT_GT(bound.b_lower, 0.0);
  EXPECT_LT(bound.b_lower, bound.sqrt_n);
}

TEST(Experiment, Theorem1BoundGrowsWithM) {
  const Theorem1Bound small = theorem1_bound(50);
  const Theorem1Bound large = theorem1_bound(400);
  EXPECT_GT(large.b_lower, small.b_lower);
  EXPECT_GT(large.n, small.n);
}

}  // namespace
}  // namespace ds::core
