#include "sketch/agm.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"

namespace ds::sketch {
namespace {

using graph::Graph;
using graph::Vertex;

std::vector<AgmVertexSketch> sketch_all(const Graph& g,
                                        const model::PublicCoins& coins) {
  std::vector<AgmVertexSketch> sketches;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    AgmVertexSketch s = AgmVertexSketch::make(coins, g.num_vertices());
    s.add_vertex_edges(v, g.neighbors(v));
    sketches.push_back(std::move(s));
  }
  return sketches;
}

TEST(Agm, MergedPairSketchIsBoundary) {
  // Vertices u, v joined by an edge: merging their sketches cancels the
  // internal edge; with a third vertex w attached to v, the merged {u,v}
  // sketch should decode the boundary edge (v,w).
  const model::PublicCoins coins(1);
  const Graph g = graph::path(3);  // 0-1-2
  auto sketches = sketch_all(g, coins);
  sketches[0].merge(sketches[1]);
  const auto sample = sketches[0].sampler(0).decode();
  ASSERT_TRUE(sample.has_value());
  const graph::Edge e = graph::pair_from_id(3, sample->index);
  EXPECT_EQ(e.normalized(), (graph::Edge{1, 2}));
}

TEST(Agm, WholeGraphMergeIsZero) {
  // Summing all vertices' sketches cancels every edge.
  const model::PublicCoins coins(2);
  util::Rng rng(3);
  const Graph g = graph::gnp(30, 0.2, rng);
  auto sketches = sketch_all(g, coins);
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    sketches[0].merge(sketches[v]);
  }
  for (unsigned round = 0; round < sketches[0].rounds(); ++round) {
    EXPECT_TRUE(sketches[0].sampler(round).looks_zero());
  }
}

TEST(Agm, SpanningForestOnConnectedGraphs) {
  util::Rng rng(4);
  int successes = 0;
  constexpr int kReps = 20;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const model::PublicCoins coins(100 + rep);
    const Graph g = graph::gnp(40, 0.2, rng);
    const auto decode =
        agm_spanning_forest(g.num_vertices(), sketch_all(g, coins));
    if (graph::is_spanning_forest(g, decode.forest)) ++successes;
  }
  EXPECT_GE(successes, kReps - 2);  // w.h.p., small slack for sampler luck
}

TEST(Agm, SpanningForestOnDisconnectedGraph) {
  const model::PublicCoins coins(5);
  util::Rng rng(6);
  // Two cliques, no bridge.
  std::vector<graph::Edge> edges;
  for (Vertex u = 0; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) edges.push_back({u, v});
  for (Vertex u = 10; u < 20; ++u)
    for (Vertex v = u + 1; v < 20; ++v) edges.push_back({u, v});
  const Graph g = Graph::from_edges(20, edges);
  const auto decode = agm_spanning_forest(20, sketch_all(g, coins));
  EXPECT_TRUE(graph::is_spanning_forest(g, decode.forest));
  EXPECT_EQ(decode.components, 2u);
  EXPECT_EQ(decode.forest.size(), 18u);
}

TEST(Agm, PathAndCycleAndStar) {
  for (std::uint64_t shape = 0; shape < 3; ++shape) {
    const model::PublicCoins coins(300 + shape);
    Graph g(1);
    switch (shape) {
      case 0: g = graph::path(25); break;
      case 1: g = graph::cycle(25); break;
      default: {
        std::vector<graph::Edge> star;
        for (Vertex v = 1; v < 25; ++v) star.push_back({0, v});
        g = Graph::from_edges(25, star);
      }
    }
    const auto decode =
        agm_spanning_forest(g.num_vertices(), sketch_all(g, coins));
    EXPECT_TRUE(graph::is_spanning_forest(g, decode.forest))
        << "shape " << shape;
  }
}

TEST(Agm, TwoClustersWithBridgeFindsTheBridge) {
  // The motivating example: the forest must include the bridge.
  util::Rng rng(7);
  const model::PublicCoins coins(8);
  const auto [g, bridge] = graph::two_clusters_with_bridge(30, 0.4, rng);
  const auto decode =
      agm_spanning_forest(g.num_vertices(), sketch_all(g, coins));
  ASSERT_TRUE(graph::is_spanning_forest(g, decode.forest));
  bool has_bridge = false;
  for (const graph::Edge& e : decode.forest) {
    has_bridge |= e.normalized() == bridge.normalized();
  }
  EXPECT_TRUE(has_bridge);
}

TEST(Agm, SerializationRoundTripPreservesDecoding) {
  const model::PublicCoins coins(9);
  const Graph g = graph::cycle(12);
  std::vector<AgmVertexSketch> restored;
  for (Vertex v = 0; v < 12; ++v) {
    AgmVertexSketch s = AgmVertexSketch::make(coins, 12);
    s.add_vertex_edges(v, g.neighbors(v));
    util::BitWriter w;
    s.write(w);
    EXPECT_EQ(w.bit_count(), s.state_bits());
    AgmVertexSketch back = AgmVertexSketch::make(coins, 12);
    const util::BitString bs(w);
    util::BitReader r(bs);
    back.read(r);
    restored.push_back(std::move(back));
  }
  const auto decode = agm_spanning_forest(12, std::move(restored));
  EXPECT_TRUE(graph::is_spanning_forest(g, decode.forest));
}

TEST(Agm, SketchSizeIsPolylog) {
  // State bits ~ rounds * levels * O(word): log^2 n words = O(log^3 n)
  // bits. Check the growth from n=64 to n=4096 is ~ (log ratio)^2-ish,
  // far below linear.
  const model::PublicCoins coins(10);
  const auto s64 = AgmVertexSketch::make(coins, 64);
  const auto s4096 = AgmVertexSketch::make(coins, 4096);
  EXPECT_LT(s4096.state_bits(), 4 * s64.state_bits());
  // Bits-per-vertex relative to n must fall sharply (polylog vs linear).
  EXPECT_LT(static_cast<double>(s4096.state_bits()) / 4096.0,
            0.1 * static_cast<double>(s64.state_bits()) / 64.0);
}

}  // namespace
}  // namespace ds::sketch
