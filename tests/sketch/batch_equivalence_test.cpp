// Bit-identity of the batched/cached hot paths against their scalar
// originals (ISSUE 9 tentpole contract): every transform in the encode
// pipeline — batched hashing, the structure-of-arrays OneSparseBank, the
// L0/SSparse add_batch entry points, and the AGM template cache — must
// produce byte-for-byte the streams the scalar per-edge path produced.
// Equality is always checked on the serialized output, the only thing a
// referee ever sees.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "model/coins.h"
#include "sketch/agm.h"
#include "sketch/l0_sampler.h"
#include "sketch/one_sparse.h"
#include "sketch/s_sparse.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace ds::sketch {
namespace {

util::BitString serialize(const auto& sketch) {
  util::BitWriter w;
  sketch.write(w);
  return util::BitString(std::move(w));
}

void expect_same_stream(const util::BitString& a, const util::BitString& b,
                        const char* what) {
  EXPECT_EQ(a.bit_count(), b.bit_count()) << what;
  EXPECT_EQ(a.words(), b.words()) << what;
}

TEST(BatchEquivalence, KWiseHashBatchMatchesScalar) {
  util::Rng rng(0xBA7C);
  for (unsigned k : {2u, 3u, 5u}) {
    util::Rng draw = rng.child(k);
    const util::KWiseHash h(k, draw);
    std::vector<std::uint64_t> xs;
    for (int i = 0; i < 257; ++i) xs.push_back(rng.next());
    xs.push_back(0);
    xs.push_back(~std::uint64_t{0});

    std::vector<std::uint64_t> batch(xs.size());
    h.eval_batch(xs, batch);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(batch[i], h(xs[i])) << "k=" << k << " i=" << i;
    }

    h.bounded_batch(xs, 12, batch);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(batch[i], h.bounded(xs[i], 12)) << "k=" << k << " i=" << i;
    }
  }
}

TEST(BatchEquivalence, SampleLevelBatchMatchesScalar) {
  util::Rng rng(0x1E7E);
  const util::KWiseHash h = util::make_pairwise(rng);
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.next_below(1u << 20));
  std::vector<std::uint32_t> levels(xs.size());
  util::sample_level_batch(h, xs, 14, levels);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(levels[i], util::sample_level(h, xs[i], 14)) << i;
  }
}

TEST(BatchEquivalence, BankSlotMatchesStandaloneOneSparse) {
  // Slot i of a bank built from tags[i] must hold exactly the state of a
  // standalone OneSparse with the same (coins, tag, universe) fed the
  // same updates — including after merge — as seen through write().
  const model::PublicCoins coins(42);
  const std::uint64_t universe = 100000;
  const std::vector<std::uint64_t> tags = {7, 1234, 0xFFFF'FFFF'FFFFull};

  OneSparseBank bank = OneSparseBank::make(coins, tags, universe);
  std::vector<OneSparse> singles;
  for (std::uint64_t tag : tags) {
    singles.push_back(OneSparse::make(coins, tag, universe));
  }

  util::Rng rng(0x0451);
  for (int step = 0; step < 200; ++step) {
    const std::size_t slot = rng.next_below(tags.size());
    const std::uint64_t index = rng.next_below(universe);
    const std::int64_t delta =
        static_cast<std::int64_t>(rng.next_below(7)) - 3;  // incl. 0
    bank.add(slot, index, delta);
    singles[slot].add(index, delta);
  }
  // merge must also agree (it drives referee-side pooling): doubling the
  // bank must match doubling each standalone summary.
  OneSparseBank merged = bank;
  merged.merge(bank);

  const util::BitString bank_bits = serialize(bank);
  util::BitReader bank_r(bank_bits);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    util::BitWriter single_w;
    singles[i].write(single_w);
    const util::BitString single_bits(single_w);
    // Compare the bank's slot-i section bit for bit.
    util::BitReader sr(single_bits);
    for (unsigned field = 0; field < 3; ++field) {
      const unsigned width = field == 0 ? 64 : 61;
      ASSERT_EQ(bank_r.get_bits(width), sr.get_bits(width))
          << "slot " << i << " field " << field;
    }
    // Decode agreement, including status.
    const DecodeResult a = bank.decode(i);
    const DecodeResult b = singles[i].decode();
    ASSERT_EQ(static_cast<int>(a.status), static_cast<int>(b.status)) << i;
    if (a.status == DecodeStatus::kOne) {
      ASSERT_EQ(a.value.index, b.value.index);
      ASSERT_EQ(a.value.count, b.value.count);
    }

    OneSparse merged_single = singles[i];
    merged_single.merge(singles[i]);
    const DecodeResult m = merged.decode(i);
    const DecodeResult ms = merged_single.decode();
    ASSERT_EQ(static_cast<int>(m.status), static_cast<int>(ms.status)) << i;
  }
}

TEST(BatchEquivalence, L0AddBatchMatchesSequentialAdds) {
  const model::PublicCoins coins(7);
  const std::uint64_t universe = 5000;
  util::Rng rng(0x10AD);
  for (std::uint64_t round = 0; round < 10; ++round) {
    L0Sampler batched = L0Sampler::make(coins, 0xC0 + round, universe);
    L0Sampler scalar = L0Sampler::make(coins, 0xC0 + round, universe);
    std::vector<std::uint64_t> indices;
    std::vector<std::int64_t> deltas;
    const std::size_t count = rng.next_below(40);
    for (std::size_t i = 0; i < count; ++i) {
      indices.push_back(rng.next_below(universe));
      deltas.push_back(static_cast<std::int64_t>(rng.next_below(5)) - 2);
    }
    batched.add_batch(indices, deltas);
    for (std::size_t i = 0; i < count; ++i) scalar.add(indices[i], deltas[i]);
    expect_same_stream(serialize(batched), serialize(scalar), "L0 add_batch");
  }
}

TEST(BatchEquivalence, SSparseAddBatchMatchesSequentialAdds) {
  const model::PublicCoins coins(9);
  const std::uint64_t universe = 4096;
  util::Rng rng(0x55AA);
  for (std::uint64_t round = 0; round < 10; ++round) {
    SSparse batched = SSparse::make(coins, 0x50 + round, universe, 4);
    SSparse scalar = SSparse::make(coins, 0x50 + round, universe, 4);
    std::vector<std::uint64_t> indices;
    const std::size_t count = rng.next_below(30);
    for (std::size_t i = 0; i < count; ++i) {
      indices.push_back(rng.next_below(universe));
    }
    batched.add_batch(indices, 1);
    for (std::uint64_t idx : indices) scalar.add(idx, 1);
    expect_same_stream(serialize(batched), serialize(scalar),
                       "SSparse add_batch");
  }
}

TEST(BatchEquivalence, AgmMakeCachedMatchesMake) {
  // Cached templates must be indistinguishable from fresh make() across
  // distinct seeds, tags and round counts (including cache hits).
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const model::PublicCoins coins(seed);
    for (std::uint64_t tag : {0xA6A6ull, 0x77ull}) {
      for (unsigned rounds : {0u, 3u}) {
        AgmVertexSketch fresh = AgmVertexSketch::make(coins, 50, rounds, tag);
        // Call twice: the first may populate the cache, the second hits.
        AgmVertexSketch c1 =
            AgmVertexSketch::make_cached(coins, 50, rounds, tag);
        AgmVertexSketch c2 =
            AgmVertexSketch::make_cached(coins, 50, rounds, tag);
        fresh.add_single_edge(3, 17);
        c1.add_single_edge(3, 17);
        c2.add_single_edge(3, 17);
        expect_same_stream(serialize(fresh), serialize(c1), "make_cached");
        expect_same_stream(serialize(fresh), serialize(c2),
                           "make_cached hit");
      }
    }
  }
}

TEST(BatchEquivalence, AgmVertexEdgesMatchesSingleEdgeLoop) {
  util::Rng rng(0xED6E);
  const graph::Graph g = graph::gnp(60, 0.15, rng);
  const model::PublicCoins coins(31);
  for (graph::Vertex v = 0; v < g.num_vertices(); v += 7) {
    AgmVertexSketch batched = AgmVertexSketch::make(coins, 60);
    AgmVertexSketch scalar = AgmVertexSketch::make(coins, 60);
    batched.add_vertex_edges(v, g.neighbors(v));
    for (graph::Vertex w : g.neighbors(v)) scalar.add_single_edge(v, w);
    expect_same_stream(serialize(batched), serialize(scalar),
                       "add_vertex_edges");
  }
}

TEST(BatchEquivalence, MersenneReductionMatchesGenericModulus) {
  // mul_mod's Mersenne-2^61-1 fold must equal the hardware % path for the
  // same operands — cross-checked against a 128-bit division oracle.
  util::Rng rng(0x3D5);
  const std::uint64_t p = util::kDefaultPrime;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.next() % p;
    const std::uint64_t b = rng.next() % p;
    const auto oracle = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * b) % p);
    ASSERT_EQ(util::mul_mod(a, b, p), oracle) << a << " * " << b;
  }
  // Boundary operands.
  for (std::uint64_t a : {std::uint64_t{0}, std::uint64_t{1}, p - 1, p - 2}) {
    for (std::uint64_t b :
         {std::uint64_t{0}, std::uint64_t{1}, p - 1, p - 2}) {
      const auto oracle = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(a) * b) % p);
      ASSERT_EQ(util::mul_mod(a, b, p), oracle);
    }
  }
}

}  // namespace
}  // namespace ds::sketch
