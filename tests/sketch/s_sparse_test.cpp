#include "sketch/s_sparse.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ds::sketch {
namespace {

model::PublicCoins coins() { return model::PublicCoins(777); }

TEST(SSparse, EmptyDecodesEmpty) {
  const SSparse s = SSparse::make(coins(), 1, 10000, 5);
  const auto r = s.decode();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(SSparse, RecoversExactlySparseVectors) {
  util::Rng rng(1);
  for (std::uint64_t rep = 0; rep < 30; ++rep) {
    SSparse s = SSparse::make(coins(), 100 + rep, 100000, 8);
    std::vector<Recovered> truth;
    const auto indices = rng.sample_without_replacement(100000, 8);
    for (std::uint64_t idx : indices) {
      const std::int64_t count = rng.next_in(-5, 5);
      if (count == 0) continue;
      s.add(idx, count);
      truth.push_back({idx, count});
    }
    const auto r = s.decode();
    ASSERT_TRUE(r.has_value()) << "rep " << rep;
    ASSERT_EQ(r->size(), truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ((*r)[i].index, truth[i].index);
      EXPECT_EQ((*r)[i].count, truth[i].count);
    }
  }
}

TEST(SSparse, DetectsOversparseVectors) {
  util::Rng rng(2);
  int detected = 0;
  constexpr int kReps = 20;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    SSparse s = SSparse::make(coins(), 200 + rep, 100000, 4);
    for (std::uint64_t idx : rng.sample_without_replacement(100000, 64)) {
      s.add(idx, 1);
    }
    const auto r = s.decode();
    // Either detected as over-sparse, or the recovery is partial — it must
    // never claim success with a wrong full set of size <= 4.
    if (!r.has_value()) {
      ++detected;
    } else {
      EXPECT_LE(r->size(), 4u);
      for (const Recovered& rec : *r) EXPECT_EQ(rec.count, 1);
    }
  }
  EXPECT_GT(detected, kReps / 2);
}

TEST(SSparse, MergeOfDisjointVectors) {
  SSparse a = SSparse::make(coins(), 300, 1000, 6);
  SSparse b = SSparse::make(coins(), 300, 1000, 6);  // same shape tag
  a.add(10, 1);
  a.add(20, 2);
  b.add(30, 3);
  a.merge(b);
  const auto r = a.decode();
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].index, 10u);
  EXPECT_EQ((*r)[2].count, 3);
}

TEST(SSparse, MergeCancellation) {
  SSparse a = SSparse::make(coins(), 400, 1000, 4);
  SSparse b = SSparse::make(coins(), 400, 1000, 4);
  a.add(5, 1);
  a.add(6, 1);
  b.add(6, -1);
  a.merge(b);
  const auto r = a.decode();
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].index, 5u);
}

TEST(SSparse, SerializationRoundTrip) {
  SSparse s = SSparse::make(coins(), 500, 2048, 5);
  s.add(1000, 7);
  s.add(2047, -2);
  util::BitWriter w;
  s.write(w);
  EXPECT_EQ(w.bit_count(), s.state_bits());

  SSparse restored = SSparse::make(coins(), 500, 2048, 5);
  const util::BitString bs(w);
    util::BitReader r(bs);
  restored.read(r);
  const auto decoded = restored.decode();
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].index, 1000u);
  EXPECT_EQ((*decoded)[1].count, -2);
}

TEST(SSparse, StateBitsScaleWithRowsAndSparsity) {
  const SSparse small = SSparse::make(coins(), 600, 1000, 2, 3);
  const SSparse large = SSparse::make(coins(), 601, 1000, 8, 6);
  EXPECT_LT(small.state_bits(), large.state_bits());
  EXPECT_EQ(small.state_bits(), 3u * 4u * OneSparse::state_bits());
}

}  // namespace
}  // namespace ds::sketch
