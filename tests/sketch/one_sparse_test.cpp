#include "sketch/one_sparse.h"

#include <gtest/gtest.h>

namespace ds::sketch {
namespace {

model::PublicCoins coins() { return model::PublicCoins(12345); }

TEST(OneSparse, ZeroVector) {
  const OneSparse s = OneSparse::make(coins(), 1, 1000);
  EXPECT_EQ(s.decode().status, DecodeStatus::kZero);
}

TEST(OneSparse, SingleElement) {
  OneSparse s = OneSparse::make(coins(), 2, 1000);
  s.add(437, 1);
  const DecodeResult r = s.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 437u);
  EXPECT_EQ(r.value.count, 1);
}

TEST(OneSparse, SingleElementWithMultiplicity) {
  OneSparse s = OneSparse::make(coins(), 3, 100);
  s.add(42, 5);
  const DecodeResult r = s.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 42u);
  EXPECT_EQ(r.value.count, 5);
}

TEST(OneSparse, NegativeCount) {
  OneSparse s = OneSparse::make(coins(), 4, 100);
  s.add(7, -3);
  const DecodeResult r = s.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 7u);
  EXPECT_EQ(r.value.count, -3);
}

TEST(OneSparse, CancellationBackToZero) {
  OneSparse s = OneSparse::make(coins(), 5, 100);
  s.add(13, 2);
  s.add(77, 1);
  s.add(13, -2);
  s.add(77, -1);
  EXPECT_EQ(s.decode().status, DecodeStatus::kZero);
}

TEST(OneSparse, TwoElementsDetected) {
  OneSparse s = OneSparse::make(coins(), 6, 1000);
  s.add(10, 1);
  s.add(20, 1);
  EXPECT_EQ(s.decode().status, DecodeStatus::kFail);
}

TEST(OneSparse, ManyElementsDetected) {
  OneSparse s = OneSparse::make(coins(), 7, 100000);
  for (std::uint64_t i = 0; i < 50; ++i) s.add(i * 37, 1);
  EXPECT_EQ(s.decode().status, DecodeStatus::kFail);
}

TEST(OneSparse, CancellingCountsDetected) {
  // ell0 == 0 but vector nonzero: must not claim zero or one-sparse.
  OneSparse s = OneSparse::make(coins(), 8, 1000);
  s.add(3, 1);
  s.add(900, -1);
  EXPECT_EQ(s.decode().status, DecodeStatus::kFail);
}

TEST(OneSparse, MergeRecoversBoundary) {
  // Two sketches of overlapping vectors: merged, the overlap cancels.
  OneSparse a = OneSparse::make(coins(), 9, 1000);
  OneSparse b = OneSparse::make(coins(), 9, 1000);
  a.add(100, 1);
  a.add(200, 1);
  b.add(200, -1);
  a.merge(b);
  const DecodeResult r = a.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 100u);
}

TEST(OneSparse, SerializationRoundTrip) {
  OneSparse s = OneSparse::make(coins(), 10, 500);
  s.add(499, 3);
  s.add(0, -1);
  util::BitWriter w;
  s.write(w);
  EXPECT_EQ(w.bit_count(), OneSparse::state_bits());

  OneSparse restored = OneSparse::make(coins(), 10, 500);  // same shape
  const util::BitString bs(w);
    util::BitReader r(bs);
  restored.read(r);
  // Adding the inverse of one element must leave a decodable 1-sparse.
  restored.add(0, 1);
  const DecodeResult d = restored.decode();
  ASSERT_EQ(d.status, DecodeStatus::kOne);
  EXPECT_EQ(d.value.index, 499u);
  EXPECT_EQ(d.value.count, 3);
}

TEST(OneSparse, FingerprintCatchesForgedState) {
  // Overwhelmingly, a random state should not decode as 1-sparse.
  util::Rng rng(999);
  int false_accepts = 0;
  for (int rep = 0; rep < 200; ++rep) {
    OneSparse s = OneSparse::make(coins(), 11, 1 << 20);
    util::BitWriter w;
    w.put_bits(rng.next(), 64);
    w.put_bits(rng.next() & ((1ULL << 61) - 1), 61);
    w.put_bits(rng.next() & ((1ULL << 61) - 1), 61);
    const util::BitString bs(w);
    util::BitReader r(bs);
    s.read(r);
    if (s.decode().status == DecodeStatus::kOne) ++false_accepts;
  }
  EXPECT_EQ(false_accepts, 0);
}

TEST(OneSparse, BoundaryIndices) {
  OneSparse s = OneSparse::make(coins(), 12, 1000);
  s.add(0, 1);
  DecodeResult r = s.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 0u);

  OneSparse s2 = OneSparse::make(coins(), 13, 1000);
  s2.add(999, 1);
  r = s2.decode();
  ASSERT_EQ(r.status, DecodeStatus::kOne);
  EXPECT_EQ(r.value.index, 999u);
}

}  // namespace
}  // namespace ds::sketch
