#include "sketch/kmv.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ds::sketch {
namespace {

TEST(Kmv, ExactBelowK) {
  const model::PublicCoins coins(1);
  KmvSketch s = KmvSketch::make(coins, 1, 64);
  for (std::uint64_t id = 0; id < 40; ++id) s.add(id * 977);
  EXPECT_TRUE(s.is_exact());
  EXPECT_DOUBLE_EQ(s.estimate(), 40.0);
}

TEST(Kmv, DuplicatesIgnored) {
  const model::PublicCoins coins(2);
  KmvSketch s = KmvSketch::make(coins, 2, 32);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    for (std::uint64_t id = 0; id < 15; ++id) s.add(id);
  }
  EXPECT_DOUBLE_EQ(s.estimate(), 15.0);
}

TEST(Kmv, EstimateWithinTolerance) {
  util::Rng rng(3);
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    const model::PublicCoins coins(100 + rep);
    KmvSketch s = KmvSketch::make(coins, 3, 256);
    constexpr std::uint64_t kTruth = 20000;
    for (std::uint64_t i = 0; i < kTruth; ++i) {
      s.add(util::mix64(i, 0xABC));
    }
    EXPECT_FALSE(s.is_exact());
    EXPECT_NEAR(s.estimate(), static_cast<double>(kTruth),
                0.25 * static_cast<double>(kTruth))
        << "rep " << rep;
  }
}

TEST(Kmv, MergeEqualsUnion) {
  const model::PublicCoins coins(4);
  KmvSketch a = KmvSketch::make(coins, 5, 64);
  KmvSketch b = KmvSketch::make(coins, 5, 64);
  KmvSketch u = KmvSketch::make(coins, 5, 64);
  for (std::uint64_t id = 0; id < 30; ++id) {
    a.add(id);
    u.add(id);
  }
  for (std::uint64_t id = 20; id < 55; ++id) {
    b.add(id);
    u.add(id);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
  EXPECT_DOUBLE_EQ(a.estimate(), 55.0);  // still below k: exact union size
}

TEST(Kmv, SerializationRoundTrip) {
  const model::PublicCoins coins(5);
  KmvSketch s = KmvSketch::make(coins, 6, 16);
  for (std::uint64_t id = 0; id < 100; ++id) s.add(id * id + 7);
  util::BitWriter w;
  s.write(w);
  KmvSketch restored = KmvSketch::make(coins, 6, 16);
  const util::BitString bits(w);
  util::BitReader r(bits);
  restored.read(r);
  EXPECT_DOUBLE_EQ(restored.estimate(), s.estimate());
}

TEST(Kmv, SharedShapeAcrossParties) {
  // Two parties with the same (coins, tag, k) build compatible sketches:
  // merging their halves equals one party seeing everything.
  const model::PublicCoins coins(6);
  KmvSketch left = KmvSketch::make(coins, 7, 32);
  KmvSketch right = KmvSketch::make(coins, 7, 32);
  KmvSketch whole = KmvSketch::make(coins, 7, 32);
  for (std::uint64_t id = 0; id < 500; ++id) {
    (id % 2 == 0 ? left : right).add(id);
    whole.add(id);
  }
  left.merge(right);
  EXPECT_DOUBLE_EQ(left.estimate(), whole.estimate());
}

}  // namespace
}  // namespace ds::sketch
