#include "sketch/l0_sampler.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace ds::sketch {
namespace {

TEST(L0Sampler, EmptyVector) {
  const model::PublicCoins coins(1);
  const L0Sampler s = L0Sampler::make(coins, 1, 1 << 16);
  EXPECT_FALSE(s.decode().has_value());
  EXPECT_TRUE(s.looks_zero());
}

TEST(L0Sampler, SingletonAlwaysRecovered) {
  const model::PublicCoins coins(2);
  for (std::uint64_t idx : {0ULL, 1ULL, 12345ULL, 65535ULL}) {
    L0Sampler s = L0Sampler::make(coins, 10 + idx, 1 << 16);
    s.add(idx, 1);
    const auto r = s.decode();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->index, idx);
    EXPECT_EQ(r->count, 1);
    EXPECT_FALSE(s.looks_zero());
  }
}

TEST(L0Sampler, DenseVectorUsuallyRecoversSomething) {
  int successes = 0;
  constexpr int kReps = 100;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const model::PublicCoins coins(100 + rep);
    L0Sampler s = L0Sampler::make(coins, 5, 1 << 16);
    for (std::uint64_t i = 0; i < 1000; ++i) s.add(i * 7 % 65536, 1);
    const auto r = s.decode();
    if (r.has_value()) {
      ++successes;
      EXPECT_EQ(r->index * 7 % 65536 * 0, 0u);  // index in range
      EXPECT_LT(r->index, 1u << 16);
    }
  }
  // Constant success probability per sampler; expect a solid majority.
  EXPECT_GT(successes, kReps / 2);
}

TEST(L0Sampler, RecoveredElementIsReal) {
  util::Rng rng(3);
  for (std::uint64_t rep = 0; rep < 50; ++rep) {
    const model::PublicCoins coins(200 + rep);
    L0Sampler s = L0Sampler::make(coins, 6, 1 << 20);
    std::map<std::uint64_t, std::int64_t> truth;
    for (std::uint64_t idx : rng.sample_without_replacement(1 << 20, 40)) {
      truth[idx] = 1;
      s.add(idx, 1);
    }
    const auto r = s.decode();
    if (r.has_value()) {
      EXPECT_TRUE(truth.contains(r->index))
          << "sampler fabricated index " << r->index;
      EXPECT_EQ(r->count, truth[r->index]);
    }
  }
}

TEST(L0Sampler, SamplesApproximatelyUniformly) {
  // Over many independent samplers, each of 8 elements should be picked
  // a roughly equal number of times.
  std::map<std::uint64_t, int> histogram;
  constexpr int kReps = 3000;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const model::PublicCoins coins(1000 + rep);
    L0Sampler s = L0Sampler::make(coins, 7, 1 << 12);
    for (std::uint64_t idx = 0; idx < 8; ++idx) s.add(idx * 37, 1);
    const auto r = s.decode();
    if (r.has_value()) ++histogram[r->index];
  }
  int total = 0;
  for (const auto& [idx, count] : histogram) total += count;
  EXPECT_GT(total, kReps / 2);
  for (const auto& [idx, count] : histogram) {
    EXPECT_NEAR(count, total / 8.0, total * 0.1 + 30)
        << "index " << idx << " over/under-sampled";
  }
}

TEST(L0Sampler, MergeActsOnUnderlyingVector) {
  const model::PublicCoins coins(4);
  L0Sampler a = L0Sampler::make(coins, 8, 1 << 10);
  L0Sampler b = L0Sampler::make(coins, 8, 1 << 10);
  a.add(100, 1);
  a.add(200, 1);
  b.add(200, -1);
  b.add(300, 1);
  a.merge(b);
  // Underlying vector is {100: 1, 300: 1}.
  const auto r = a.decode();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->index == 100 || r->index == 300);
}

TEST(L0Sampler, SerializationRoundTrip) {
  const model::PublicCoins coins(5);
  L0Sampler s = L0Sampler::make(coins, 9, 1 << 10);
  s.add(777, 2);
  util::BitWriter w;
  s.write(w);
  EXPECT_EQ(w.bit_count(), s.state_bits());

  L0Sampler restored = L0Sampler::make(coins, 9, 1 << 10);
  const util::BitString bs(w);
    util::BitReader r(bs);
  restored.read(r);
  const auto d = restored.decode();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->index, 777u);
  EXPECT_EQ(d->count, 2);
}

TEST(L0Sampler, StateBitsAreLogSquared) {
  // levels ~ log U, each level O(word) bits: state ~ log^2 U.
  const model::PublicCoins coins(6);
  const L0Sampler small = L0Sampler::make(coins, 10, 1 << 8);
  const L0Sampler large = L0Sampler::make(coins, 11, 1ULL << 32);
  EXPECT_LT(small.state_bits(), large.state_bits());
  EXPECT_EQ(small.num_levels(), 8u + 3u);
  EXPECT_EQ(large.num_levels(), 33u + 2u);
}

}  // namespace
}  // namespace ds::sketch
