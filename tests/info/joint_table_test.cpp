#include "info/joint_table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ds::info {
namespace {

/// X uniform bit, Y = X: I(X;Y) = 1 bit.
JointTable perfectly_correlated() {
  JointTable t({"X", "Y"});
  t.add_row({0, 0}, 0.5);
  t.add_row({1, 1}, 0.5);
  t.normalize();
  return t;
}

/// X, Y independent uniform bits.
JointTable independent_bits() {
  JointTable t({"X", "Y"});
  for (std::uint64_t x : {0u, 1u}) {
    for (std::uint64_t y : {0u, 1u}) t.add_row({x, y}, 0.25);
  }
  t.normalize();
  return t;
}

TEST(JointTable, MarginalEntropy) {
  const JointTable t = independent_bits();
  EXPECT_NEAR(t.entropy({"X"}), 1.0, 1e-12);
  EXPECT_NEAR(t.entropy({"Y"}), 1.0, 1e-12);
  EXPECT_NEAR(t.entropy({"X", "Y"}), 2.0, 1e-12);
}

TEST(JointTable, MutualInformationIndependent) {
  EXPECT_NEAR(independent_bits().mutual_information({"X"}, {"Y"}), 0.0, 1e-12);
}

TEST(JointTable, MutualInformationCorrelated) {
  EXPECT_NEAR(perfectly_correlated().mutual_information({"X"}, {"Y"}), 1.0,
              1e-12);
}

TEST(JointTable, ConditionalEntropy) {
  const JointTable t = perfectly_correlated();
  EXPECT_NEAR(t.conditional_entropy(std::vector<std::string>{"X"},
                                    std::vector<std::string>{"Y"}),
              0.0, 1e-12);
}

TEST(JointTable, XorTriple) {
  // Z = X xor Y with X, Y independent uniform: pairwise independent, but
  // I(X;Y|Z) = 1.
  JointTable t({"X", "Y", "Z"});
  for (std::uint64_t x : {0u, 1u}) {
    for (std::uint64_t y : {0u, 1u}) t.add_row({x, y, x ^ y}, 0.25);
  }
  t.normalize();
  EXPECT_NEAR(t.mutual_information({"X"}, {"Z"}), 0.0, 1e-12);
  EXPECT_NEAR(t.mutual_information({"X"}, {"Y"}), 0.0, 1e-12);
  EXPECT_NEAR(t.mutual_information({"X"}, {"Y"}, {"Z"}), 1.0, 1e-12);
  EXPECT_NEAR(t.entropy({"X", "Y", "Z"}), 2.0, 1e-12);
}

TEST(JointTable, DuplicateRowsMerge) {
  JointTable t({"X"});
  t.add_row({0}, 0.3);
  t.add_row({0}, 0.2);
  t.add_row({1}, 0.5);
  t.normalize();
  EXPECT_NEAR(t.entropy({"X"}), 1.0, 1e-12);
}

TEST(JointTable, UnknownColumnThrows) {
  const JointTable t = independent_bits();
  EXPECT_THROW((void)t.entropy({"Nope"}), std::invalid_argument);
}

TEST(JointTable, NonUniformMass) {
  JointTable t({"A", "B"});
  t.add_row({0, 0}, 3.0);
  t.add_row({1, 1}, 1.0);
  t.normalize();
  EXPECT_NEAR(t.entropy({"A"}), binary_entropy(0.25), 1e-12);
  EXPECT_NEAR(t.mutual_information({"A"}, {"B"}), binary_entropy(0.25),
              1e-12);
}

TEST(JointTable, MultiColumnGroups) {
  // (X1, X2) jointly determine Y; individually each gives 1 bit of a
  // 2-bit Y.
  JointTable t({"X1", "X2", "Y"});
  for (std::uint64_t a : {0u, 1u}) {
    for (std::uint64_t b : {0u, 1u}) t.add_row({a, b, 2 * a + b}, 0.25);
  }
  t.normalize();
  EXPECT_NEAR(t.mutual_information({"X1", "X2"}, {"Y"}), 2.0, 1e-12);
  EXPECT_NEAR(t.mutual_information({"X1"}, {"Y"}), 1.0, 1e-12);
}

}  // namespace
}  // namespace ds::info
