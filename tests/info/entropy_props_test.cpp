// Property tests for the Section 2.3 toolkit: Fact 2.2 identities and
// inequalities on randomly generated joint laws, plus Propositions 2.3
// and 2.4 on joint laws constructed to satisfy their hypotheses.
#include "info/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ds::info {
namespace {

class RandomTableProps : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  JointTable make_table() {
    util::Rng rng(GetParam());
    return random_joint_table({"A", "B", "C", "D"}, /*alphabet=*/3,
                              /*support=*/40, rng);
  }
};

TEST_P(RandomTableProps, ConditioningReducesEntropy) {
  const CheckResult r =
      check_conditioning_reduces_entropy(make_table(), "A", "B", "C");
  EXPECT_TRUE(r.holds) << r.lhs << " > " << r.rhs;
}

TEST_P(RandomTableProps, EntropyChainRule) {
  const CheckResult r = check_entropy_chain_rule(make_table(), "A", "B", "C");
  EXPECT_TRUE(r.holds) << r.lhs << " != " << r.rhs;
}

TEST_P(RandomTableProps, MutualInformationChainRule) {
  const CheckResult r =
      check_mi_chain_rule(make_table(), "A", "B", "C", "D");
  EXPECT_TRUE(r.holds) << r.lhs << " != " << r.rhs;
}

TEST_P(RandomTableProps, MutualInformationNonNegative) {
  const JointTable t = make_table();
  EXPECT_GE(t.mutual_information({"A"}, {"B"}), -kTolerance);
  EXPECT_GE(t.mutual_information({"A"}, {"B"}, {"C"}), -kTolerance);
  EXPECT_GE(t.mutual_information({"A", "D"}, {"B"}, {"C"}), -kTolerance);
}

TEST_P(RandomTableProps, EntropyBounds) {
  const JointTable t = make_table();
  const double h = t.entropy({"A"});
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, std::log2(3.0) + kTolerance);  // alphabet size 3
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

/// Build a law where A is independent of D given C:
/// C uniform; A = f(C, noise_a); D = g(C, noise_d); B arbitrary function
/// of (A, C, D) — the hypothesis of Proposition 2.3.
JointTable a_indep_d_given_c(std::uint64_t seed) {
  util::Rng rng(seed);
  JointTable t({"A", "B", "C", "D"});
  // Explicit factorization p(c) p(a|c) p(d|c) p(b|a,c,d).
  for (std::uint64_t c = 0; c < 2; ++c) {
    const double pc = (c == 0) ? 0.4 : 0.6;
    double pa[2];
    pa[0] = 0.2 + 0.6 * rng.next_double();
    pa[1] = 1.0 - pa[0];
    double pd[2];
    pd[0] = 0.2 + 0.6 * rng.next_double();
    pd[1] = 1.0 - pd[0];
    for (std::uint64_t a = 0; a < 2; ++a) {
      for (std::uint64_t d = 0; d < 2; ++d) {
        double pb[2];
        pb[0] = 0.1 + 0.8 * rng.next_double();
        pb[1] = 1.0 - pb[0];
        for (std::uint64_t b = 0; b < 2; ++b) {
          t.add_row({a, b, c, d}, pc * pa[a] * pd[d] * pb[b]);
        }
      }
    }
  }
  t.normalize();
  return t;
}

class Prop23 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop23, HoldsUnderItsHypothesis) {
  const JointTable t = a_indep_d_given_c(GetParam());
  ASSERT_TRUE(conditionally_independent(t, "A", "D", "C"));
  const CheckResult r = check_proposition_2_3(t, "A", "B", "C", "D");
  EXPECT_TRUE(r.holds) << r.lhs << " > " << r.rhs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop23,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

/// Build a law where A is independent of D given (B, C):
/// p(b,c) arbitrary; p(a|b,c) and p(d|b,c) independent — the hypothesis
/// of Proposition 2.4.
JointTable a_indep_d_given_bc(std::uint64_t seed) {
  util::Rng rng(seed);
  JointTable t({"A", "B", "C", "D"});
  for (std::uint64_t b = 0; b < 2; ++b) {
    for (std::uint64_t c = 0; c < 2; ++c) {
      const double pbc = 0.1 + rng.next_double();
      double pa[2];
      pa[0] = 0.2 + 0.6 * rng.next_double();
      pa[1] = 1.0 - pa[0];
      double pd[2];
      pd[0] = 0.2 + 0.6 * rng.next_double();
      pd[1] = 1.0 - pd[0];
      for (std::uint64_t a = 0; a < 2; ++a) {
        for (std::uint64_t d = 0; d < 2; ++d) {
          t.add_row({a, b, c, d}, pbc * pa[a] * pd[d]);
        }
      }
    }
  }
  t.normalize();
  return t;
}

class Prop24 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop24, HoldsUnderItsHypothesis) {
  const JointTable t = a_indep_d_given_bc(GetParam());
  const CheckResult r = check_proposition_2_4(t, "A", "B", "C", "D");
  EXPECT_TRUE(r.holds) << r.lhs << " < " << r.rhs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop24,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST(PropositionCounterexample, Prop23NeedsItsHypothesis) {
  // XOR: A, D independent uniform, B = A xor D, C constant.  Then
  // I(A;B|C) = 0 but I(A;B|C,D) = 1 — consistent with Prop 2.3 (A indep D
  // given C holds here!).  Flip it: make A = D; then conditioning on D
  // kills the information: I(A;B|C) = I(A;B) may exceed I(A;B|C,D) = 0,
  // and indeed A is NOT independent of D given C.
  JointTable t({"A", "B", "C", "D"});
  for (std::uint64_t a : {0u, 1u}) {
    t.add_row({a, a, 0, a}, 0.5);  // B = A, D = A
  }
  t.normalize();
  ASSERT_FALSE(conditionally_independent(t, "A", "D", "C"));
  const CheckResult r = check_proposition_2_3(t, "A", "B", "C", "D");
  EXPECT_FALSE(r.holds);  // 1 = I(A;B|C) > I(A;B|C,D) = 0
}

}  // namespace
}  // namespace ds::info
