#include "info/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ds::info {
namespace {

TEST(Distribution, UniformEntropy) {
  for (std::uint64_t n : {2ULL, 4ULL, 8ULL, 100ULL}) {
    const Distribution d = Distribution::uniform(n);
    EXPECT_NEAR(d.entropy(), std::log2(static_cast<double>(n)), 1e-12);
  }
}

TEST(Distribution, PointMassZeroEntropy) {
  Distribution d;
  d.add(7, 1.0);
  d.normalize();
  EXPECT_EQ(d.entropy(), 0.0);
  EXPECT_DOUBLE_EQ(d.probability(7), 1.0);
  EXPECT_EQ(d.probability(8), 0.0);
}

TEST(Distribution, BiasedCoinEntropy) {
  Distribution d;
  d.add(0, 0.25);
  d.add(1, 0.75);
  d.normalize();
  EXPECT_NEAR(d.entropy(), binary_entropy(0.25), 1e-12);
}

TEST(Distribution, AccumulatesMass) {
  Distribution d;
  d.add(0, 0.5);
  d.add(0, 0.5);
  d.add(1, 1.0);
  d.normalize();
  EXPECT_DOUBLE_EQ(d.probability(0), 0.5);
  EXPECT_EQ(d.support_size(), 2u);
}

TEST(Distribution, EntropyUpperBoundedByLogSupport) {
  // Fact 2.2-(1).
  Distribution d;
  d.add(0, 0.6);
  d.add(1, 0.3);
  d.add(2, 0.1);
  d.normalize();
  EXPECT_LE(d.entropy(), std::log2(3.0) + 1e-12);
  EXPECT_GE(d.entropy(), 0.0);
}

TEST(BinaryEntropy, KnownValues) {
  EXPECT_EQ(binary_entropy(0.0), 0.0);
  EXPECT_EQ(binary_entropy(1.0), 0.0);
  EXPECT_NEAR(binary_entropy(0.5), 1.0, 1e-12);
  EXPECT_NEAR(binary_entropy(0.11), binary_entropy(0.89), 1e-12);
}

TEST(XLog2Term, Continuity) {
  EXPECT_EQ(xlog2_term(0.0), 0.0);
  EXPECT_NEAR(xlog2_term(0.5), 0.5, 1e-12);
  EXPECT_NEAR(xlog2_term(1.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace ds::info
