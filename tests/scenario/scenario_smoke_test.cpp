// Satellite 3's in-repo half: every registered scenario runs one trial
// through BOTH execution paths — the in-process simulated runner
// (LocalSource) and the wire referee/player pair over a loopback link
// (WireSource) — and the outcomes must agree exactly: same success
// verdict, same realized max bits, same output hash on the referee, the
// player, and the simulation.  This is the contract that lets
// tools/distsketch_service --scenario <id> serve any family with zero
// per-scenario harness code.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "scenario/registry.h"
#include "service/referee_service.h"
#include "util/rng.h"
#include "wire/loopback.h"

namespace ds::scenario {
namespace {

constexpr std::chrono::milliseconds kTimeout{5000};

struct WireRun {
  TrialOutcome referee;
  std::uint64_t player_hash = 0;
};

// One player owning all of [0, n), joined to the referee by a loopback
// pair; the player runs on its own thread because play_trial blocks
// awaiting the result broadcast.
WireRun run_over_loopback(const Scenario& s, std::size_t budget,
                          std::uint64_t trial_seed) {
  wire::LoopbackPair pair = wire::make_loopback_pair();
  std::vector<graph::Vertex> owned(s.num_vertices());
  std::iota(owned.begin(), owned.end(), graph::Vertex{0});

  WireRun run;
  std::thread player([&] {
    run.player_hash =
        s.play_trial(*pair.player_side, owned, budget, trial_seed, kTimeout);
  });

  std::vector<std::unique_ptr<wire::Link>> links;
  links.push_back(std::move(pair.referee_side));
  // The coin seed here is irrelevant: serve_trial keys this trial's coins
  // from trial_seed (kCoinTag), same as the player and the simulation.
  service::RefereeService referee(std::move(links), /*coin_seed=*/0,
                                  kTimeout);
  run.referee = s.serve_trial(referee, budget, trial_seed);
  player.join();
  return run;
}

TEST(ScenarioSmoke, SimEqualsWireForEveryRegisteredScenario) {
  for (const Scenario* s : all()) {
    SCOPED_TRACE(std::string(s->id()));
    const std::size_t budget = s->default_grid().budgets.back();
    const std::uint64_t trial_seed =
        util::derive_seed(s->default_grid().seed, 0);

    const TrialOutcome sim = s->run_trial(budget, trial_seed);
    const WireRun wire = run_over_loopback(*s, budget, trial_seed);

    EXPECT_EQ(wire.referee.success, sim.success);
    EXPECT_EQ(wire.referee.max_bits, sim.max_bits);
    EXPECT_EQ(wire.referee.output_hash, sim.output_hash);
    EXPECT_EQ(wire.player_hash, sim.output_hash);
  }
}

TEST(ScenarioSmoke, WirePathIsDeterministicInTheTrialSeed) {
  // Two wire runs with the same trial seed produce the same outcome; a
  // different seed changes the instance (and almost surely the hash).
  const Scenario* s = find("easy-cc");
  ASSERT_NE(s, nullptr);
  const std::size_t budget = s->default_grid().budgets.back();
  const WireRun a = run_over_loopback(*s, budget, 1001);
  const WireRun b = run_over_loopback(*s, budget, 1001);
  EXPECT_EQ(a.referee.output_hash, b.referee.output_hash);
  EXPECT_EQ(a.referee.max_bits, b.referee.max_bits);
  EXPECT_EQ(a.referee.success, b.referee.success);
  EXPECT_EQ(a.player_hash, b.player_hash);

  const WireRun c = run_over_loopback(*s, budget, 1002);
  EXPECT_NE(c.referee.output_hash, a.referee.output_hash);
}

TEST(ScenarioSmoke, SmallestBudgetAlsoRoundTrips) {
  // The degenerate end of each grid must survive the wire too (tiny
  // sketches, possibly empty outputs).
  for (const Scenario* s : all()) {
    SCOPED_TRACE(std::string(s->id()));
    const std::size_t budget = s->default_grid().budgets.front();
    const std::uint64_t trial_seed =
        util::derive_seed(s->default_grid().seed, 1);
    const TrialOutcome sim = s->run_trial(budget, trial_seed);
    const WireRun wire = run_over_loopback(*s, budget, trial_seed);
    EXPECT_EQ(wire.referee.output_hash, sim.output_hash);
    EXPECT_EQ(wire.referee.max_bits, sim.max_bits);
    EXPECT_EQ(wire.referee.success, sim.success);
    EXPECT_EQ(wire.player_hash, sim.output_hash);
  }
}

}  // namespace
}  // namespace ds::scenario
