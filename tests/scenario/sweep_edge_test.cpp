// Satellite 2: sweep_budgets edge cases the golden test can't reach —
// a target rate that is never met (threshold stays nullopt), a
// non-monotone rate curve (threshold is the FIRST crossing, by contract),
// and the single-trial Wilson interval.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "core/sweep.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "protocols/sampled_matching.h"
#include "scenario/typed.h"
#include "util/stats.h"

namespace ds::scenario {
namespace {

Instance gnp_instance(graph::Vertex n, double p, std::uint64_t seed) {
  util::Rng rng(seed);
  return Instance{graph::gnp(n, p, rng), nullptr};
}

// A scenario whose effective protocol budget is an arbitrary function of
// the swept budget — the lever for shaping the rate curve.
InlineScenario<model::MatchingOutput> shaped_scenario(
    std::function<std::size_t(std::size_t)> effective_budget) {
  return InlineScenario<model::MatchingOutput>(
      "shaped", "budget-shaped matching for sweep edge cases", 20,
      Grid{{64}, 4, 11, 0.9},
      [](std::uint64_t seed) { return gnp_instance(20, 0.3, seed); },
      [effective_budget = std::move(effective_budget)](std::size_t budget) {
        return std::make_unique<protocols::BudgetedMatching>(
            effective_budget(budget));
      },
      [](const Instance& inst, const model::MatchingOutput& out) {
        return graph::is_matching(out, inst.g.num_vertices()) &&
               graph::is_valid_matching(inst.g, out) &&
               graph::is_maximal_matching(inst.g, out);
      });
}

TEST(SweepEdge, TargetNeverReachedLeavesThresholdEmpty) {
  // Every budget maps to a 1-bit protocol: maximality is unreachable, the
  // rate stays ~0, and no threshold may be reported.
  const auto s = shaped_scenario([](std::size_t) { return std::size_t{1}; });
  const std::vector<std::size_t> budgets{8, 64, 512};
  const core::SweepResult result =
      core::sweep_budgets(s, budgets, /*trials=*/6, /*seed=*/3,
                          /*target_rate=*/0.9);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_FALSE(result.threshold_budget.has_value());
  for (const core::SweepPoint& p : result.points) {
    EXPECT_LT(p.rate, 0.9);
    EXPECT_LE(p.ci.hi, 1.0);
    EXPECT_GE(p.ci.lo, 0.0);
  }
}

TEST(SweepEdge, NonMonotoneCurveThresholdIsFirstCrossing) {
  // The middle budget is sabotaged down to 1 effective bit, so the rate
  // curve goes high -> low -> high.  The contract (sweep.h) is that
  // threshold_budget is the SMALLEST swept budget whose rate reached the
  // target — the later dip must not un-set it.
  const auto s = shaped_scenario([](std::size_t budget) {
    return budget == 64 ? std::size_t{1} : std::size_t{4096};
  });
  const std::vector<std::size_t> budgets{16, 64, 256};
  const core::SweepResult result =
      core::sweep_budgets(s, budgets, /*trials=*/6, /*seed=*/3,
                          /*target_rate=*/0.9);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.points[0].rate, 1.0);
  EXPECT_LT(result.points[1].rate, 0.9);
  EXPECT_EQ(result.points[2].rate, 1.0);
  ASSERT_TRUE(result.threshold_budget.has_value());
  EXPECT_EQ(*result.threshold_budget, 16u);
}

TEST(SweepEdge, SingleTrialWilsonIntervalMatchesStatsHelper) {
  // trials = 1 is the extreme small-sample case: the point rate is 0 or 1
  // and the Wilson interval must match util::wilson_interval exactly and
  // stay inside [0, 1] (never the degenerate +/- normal approximation).
  const auto always = shaped_scenario([](std::size_t) {
    return std::size_t{4096};
  });
  const auto never = shaped_scenario([](std::size_t) {
    return std::size_t{1};
  });
  const std::vector<std::size_t> budgets{32};

  const core::SweepResult hit =
      core::sweep_budgets(always, budgets, /*trials=*/1, /*seed=*/5);
  ASSERT_EQ(hit.points.size(), 1u);
  EXPECT_EQ(hit.points[0].trials, 1u);
  EXPECT_EQ(hit.points[0].successes, 1u);
  EXPECT_EQ(hit.points[0].rate, 1.0);
  const util::Interval one = util::wilson_interval(1, 1);
  EXPECT_EQ(hit.points[0].ci.lo, one.lo);
  EXPECT_EQ(hit.points[0].ci.hi, one.hi);
  EXPECT_GT(hit.points[0].ci.lo, 0.0);
  EXPECT_LE(hit.points[0].ci.hi, 1.0);

  const core::SweepResult miss =
      core::sweep_budgets(never, budgets, /*trials=*/1, /*seed=*/5);
  ASSERT_EQ(miss.points.size(), 1u);
  EXPECT_EQ(miss.points[0].successes, 0u);
  EXPECT_EQ(miss.points[0].rate, 0.0);
  const util::Interval zero = util::wilson_interval(0, 1);
  EXPECT_EQ(miss.points[0].ci.lo, zero.lo);
  EXPECT_EQ(miss.points[0].ci.hi, zero.hi);
  EXPECT_GE(miss.points[0].ci.lo, 0.0);
  EXPECT_LT(miss.points[0].ci.hi, 1.0);
}

}  // namespace
}  // namespace ds::scenario
