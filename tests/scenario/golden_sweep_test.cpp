// The tentpole's bit-identity pin: D_MM sweep results captured BEFORE
// the scenario refactor (with the legacy three-lambda sweep_budgets)
// must reproduce exactly through the Scenario seam, at 1, 4, and the
// configured thread count.  The fingerprint folds every SweepPoint field
// including the bit-cast doubles, so any drift in sampling, coin keying,
// protocol construction, judging, or fold order fails loudly.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/sweep.h"
#include "parallel/thread_pool.h"
#include "scenario/builtin.h"
#include "scenario/registry.h"

namespace ds::scenario {
namespace {

std::uint64_t fingerprint(const core::SweepResult& r) {
  std::uint64_t h = kFnvOffset;
  h = fnv_fold(h, r.threshold_budget.has_value() ? 1u : 0u);
  h = fnv_fold(h, r.threshold_budget.value_or(0));
  for (const core::SweepPoint& p : r.points) {
    h = fnv_fold(h, p.budget_bits);
    h = fnv_fold(h, p.trials);
    h = fnv_fold(h, p.successes);
    h = fnv_fold(h, p.max_bits_seen);
    h = fnv_fold(h, std::bit_cast<std::uint64_t>(p.rate));
    h = fnv_fold(h, std::bit_cast<std::uint64_t>(p.ci.lo));
    h = fnv_fold(h, std::bit_cast<std::uint64_t>(p.ci.hi));
  }
  return h;
}

// Pre-refactor captures (legacy template sweep_budgets, 2026-08):
//   m=8,  trials=12, seed=7, target=0.9, budgets=[7,28,112,224]
//   m=16, trials=24, seed=7, target=0.9, budgets=[9,36,144,576,1152]
constexpr std::uint64_t kGoldenSmall = 0xb2ab548fa3236ea1ull;
constexpr std::uint64_t kGoldenBench = 0xd4d868ab92aed5feull;

TEST(ScenarioGoldenSweep, DmmSmallReproducesPreRefactorBits) {
  const DmmMatchingScenario s(8);
  const std::vector<std::size_t> expected_budgets{7, 28, 112, 224};
  EXPECT_EQ(s.default_grid().budgets, expected_budgets);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, parallel::configured_threads()}) {
    parallel::ThreadPool pool(threads);
    const core::SweepResult result = core::sweep_budgets(
        s, s.default_grid().budgets, /*trials=*/12, /*seed=*/7,
        /*target_rate=*/0.9, &pool);
    EXPECT_EQ(fingerprint(result), kGoldenSmall)
        << "at " << threads << " threads";
    ASSERT_TRUE(result.threshold_budget.has_value());
    EXPECT_EQ(*result.threshold_budget, 28u);
  }
}

TEST(ScenarioGoldenSweep, RegisteredDmmMatchingReproducesPreRefactorBits) {
  // The registry's dmm-matching (m=16) swept over its own default grid
  // must equal the pre-refactor bench configuration bit for bit.
  const Scenario* s = find("dmm-matching");
  ASSERT_NE(s, nullptr);
  const std::vector<std::size_t> expected_budgets{9, 36, 144, 576, 1152};
  EXPECT_EQ(s->default_grid().budgets, expected_budgets);
  EXPECT_EQ(s->default_grid().trials, 24u);
  EXPECT_EQ(s->default_grid().seed, 7u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, parallel::configured_threads()}) {
    parallel::ThreadPool pool(threads);
    const core::SweepResult result = core::sweep_scenario(*s, &pool);
    EXPECT_EQ(fingerprint(result), kGoldenBench)
        << "at " << threads << " threads";
    ASSERT_TRUE(result.threshold_budget.has_value());
    EXPECT_EQ(*result.threshold_budget, 144u);
  }
}

}  // namespace
}  // namespace ds::scenario
