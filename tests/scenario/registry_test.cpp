#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "scenario/builtin.h"
#include "scenario/registry.h"

namespace ds::scenario {
namespace {

TEST(ScenarioRegistry, BuiltinsRegisteredAndSortedById) {
  const std::vector<const Scenario*> scenarios = all();
  ASSERT_GE(scenarios.size(), 6u);
  EXPECT_TRUE(std::is_sorted(scenarios.begin(), scenarios.end(),
                             [](const Scenario* a, const Scenario* b) {
                               return a->id() < b->id();
                             }));
  for (const Scenario* s : scenarios) {
    EXPECT_FALSE(s->id().empty());
    EXPECT_FALSE(s->description().empty());
    EXPECT_GT(s->num_vertices(), 0u) << s->id();
    EXPECT_FALSE(s->default_grid().budgets.empty()) << s->id();
  }
}

TEST(ScenarioRegistry, FindRoundTripsEveryId) {
  for (const std::string& id : ids()) {
    const Scenario* s = find(id);
    ASSERT_NE(s, nullptr) << id;
    EXPECT_EQ(s->id(), id);
  }
  EXPECT_EQ(find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, ExpectedFamiliesPresent) {
  for (const char* id : {"dmm-matching", "dmm-mis-reduction", "gnp-matching",
                         "connectivity-yu-hard", "easy-cc", "easy-cc-mis"}) {
    EXPECT_NE(find(id), nullptr) << id;
  }
}

TEST(ScenarioRegistry, SuggestFindsNearestId) {
  // One edit away from a registered id resolves to it.
  const auto s = suggest("dmm-maching");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "dmm-matching");
  const auto cc = suggest("easy-c");
  ASSERT_TRUE(cc.has_value());
  EXPECT_EQ(*cc, "easy-cc");
}

TEST(ScenarioRegistry, DuplicateIdThrowsWithoutMutatingRegistry) {
  const std::size_t before = all().size();
  EXPECT_THROW(register_scenario(std::make_unique<GnpMatchingScenario>(8, 0.5)),
               std::logic_error);
  EXPECT_EQ(all().size(), before);
}

TEST(ScenarioRegistry, SampleIsPureInTheSeed) {
  for (const Scenario* s : all()) {
    const Instance a = s->sample(41);
    const Instance b = s->sample(41);
    const Instance c = s->sample(42);
    EXPECT_EQ(a.g.num_vertices(), s->num_vertices()) << s->id();
    EXPECT_EQ(a.g.edges(), b.g.edges()) << s->id();
    EXPECT_EQ(b.g.num_vertices(), c.g.num_vertices()) << s->id();
  }
}

}  // namespace
}  // namespace ds::scenario
