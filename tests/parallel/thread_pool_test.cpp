#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ds::parallel {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<std::uint32_t>> hits(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "index " << i << " at " << threads
                                    << " threads";
    }
  }
}

TEST(ThreadPool, RespectsRangeOffset) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<std::size_t> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(pool.parallel_reduce(
                0, 0, std::size_t{42},
                [](std::size_t& acc, std::size_t) { ++acc; },
                [](std::size_t& a, std::size_t b) { a += b; }),
            42u);
}

TEST(ThreadPool, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(0, seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t calls = 0;
  pool.parallel_for(0, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(0, 200,
                                   [&](std::size_t i) {
                                     if (i == 137) {
                                       throw std::runtime_error("task 137");
                                     }
                                   }),
                 std::runtime_error);
    // The pool must remain fully usable after a failed job.
    std::atomic<std::size_t> calls{0};
    pool.parallel_for(0, 100, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 100u);
  }
}

TEST(ThreadPool, NestedParallelLoopsRunInline) {
  // A body that issues another parallel loop on the same pool must not
  // deadlock: nested loops run inline on the issuing lane.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t j) {
      total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 28u);
}

TEST(ThreadPool, ReduceFoldsChunksInOrder) {
  // The merge below is NOT commutative (concatenation); the reduce is
  // only deterministic if chunks fold in chunk order, independent of the
  // thread count — the pool's central contract.
  const auto concat_indices = [](ThreadPool& pool, std::size_t n) {
    return pool.parallel_reduce(
        0, n, std::vector<std::size_t>{},
        [](std::vector<std::size_t>& acc, std::size_t i) { acc.push_back(i); },
        [](std::vector<std::size_t>& into, std::vector<std::size_t>&& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
  };
  std::vector<std::size_t> expected(777);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(concat_indices(pool, 777), expected)
        << "at " << threads << " threads";
  }
}

TEST(ThreadPool, ChunkBoundsPartitionTheRange) {
  for (const std::size_t n : {1u, 7u, 64u, 65u, 1000u}) {
    const std::size_t chunks = ThreadPool::chunk_count(n);
    EXPECT_GE(chunks, 1u);
    EXPECT_LE(chunks, n);
    std::size_t covered = 0;
    std::size_t expected_lo = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [lo, hi] = ThreadPool::chunk_bounds(n, chunks, c);
      EXPECT_EQ(lo, expected_lo);  // contiguous, in order, no gaps
      EXPECT_GT(hi, lo);
      covered += hi - lo;
      expected_lo = hi;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ThreadPool, ChunkCountIsIndependentOfThreadCount) {
  // chunk_count is a pure function of the range size; nothing about the
  // pool (or DISTSKETCH_THREADS) may leak into the decomposition.
  EXPECT_EQ(ThreadPool::chunk_count(10), 10u);
  EXPECT_EQ(ThreadPool::chunk_count(64), 64u);
  EXPECT_EQ(ThreadPool::chunk_count(100000), 64u);
}

TEST(ThreadPool, ParseThreadCount) {
  // Unset / empty / malformed / zero fall back to hardware concurrency.
  EXPECT_EQ(parse_thread_count(nullptr, 8), 8u);
  EXPECT_EQ(parse_thread_count("", 8), 8u);
  EXPECT_EQ(parse_thread_count("abc", 8), 8u);
  EXPECT_EQ(parse_thread_count("4x", 8), 8u);
  EXPECT_EQ(parse_thread_count("-2", 8), 8u);
  EXPECT_EQ(parse_thread_count("0", 8), 8u);
  // Hardware probe returning 0 still yields a usable count.
  EXPECT_EQ(parse_thread_count(nullptr, 0), 1u);
  // DISTSKETCH_THREADS=1 is the serial fallback.
  EXPECT_EQ(parse_thread_count("1", 8), 1u);
  EXPECT_EQ(parse_thread_count("3", 8), 3u);
  // Absurd values clamp instead of exhausting the machine.
  EXPECT_EQ(parse_thread_count("99999999999999999999", 8), 512u);
  EXPECT_EQ(parse_thread_count("4096", 8), 512u);
}

}  // namespace
}  // namespace ds::parallel
