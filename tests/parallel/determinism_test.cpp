// The determinism contract of docs/PARALLELISM.md, asserted end to end:
// every harness that fans out across the thread pool — sketch collection,
// budget sweeps, the audited runner, the exhaustive protocol search —
// must produce BIT-identical outputs and identical CommStats at 1, 2, and
// 8 threads.  These tests are also the payload of the CI tsan job.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audited_runner.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "graph/generators.h"
#include "lowerbound/protocol_search.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"
#include "protocols/sampled_matching.h"
#include "protocols/two_round_matching.h"
#include "rs/rs_graph.h"
#include "scenario/registry.h"

namespace ds {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_same_comm(const model::CommStats& a, const model::CommStats& b,
                      std::size_t threads) {
  EXPECT_EQ(a.max_bits, b.max_bits) << "at " << threads << " threads";
  EXPECT_EQ(a.total_bits, b.total_bits) << "at " << threads << " threads";
  EXPECT_EQ(a.num_players, b.num_players) << "at " << threads << " threads";
}

void expect_same_sketches(const std::vector<util::BitString>& a,
                          const std::vector<util::BitString>& b,
                          std::size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].bit_count(), b[v].bit_count())
        << "player " << v << " at " << threads << " threads";
    EXPECT_EQ(a[v].words(), b[v].words())
        << "player " << v << " at " << threads << " threads";
  }
}

TEST(ParallelDeterminism, CollectSketchesBitIdenticalAcrossThreadCounts) {
  util::Rng rng(11);
  const graph::Graph g = graph::gnp(150, 0.08, rng);
  const protocols::BudgetedMatching protocol(96);
  const model::PublicCoins coins(1234);

  parallel::ThreadPool reference_pool(1);
  model::CommStats reference_comm;
  const auto reference = model::collect_sketches(
      g, protocol, coins, reference_comm, &reference_pool);

  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    model::CommStats comm;
    const auto sketches =
        model::collect_sketches(g, protocol, coins, comm, &pool);
    expect_same_sketches(reference, sketches, threads);
    expect_same_comm(reference_comm, comm, threads);
  }
}

TEST(ParallelDeterminism, RunProtocolOutputIdenticalAcrossThreadCounts) {
  util::Rng rng(13);
  const graph::Graph g = graph::gnp(100, 0.1, rng);
  const protocols::BudgetedMatching protocol(128);
  const model::PublicCoins coins(77);

  parallel::ThreadPool serial(1);
  const auto reference = model::run_protocol(g, protocol, coins, &serial);
  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    const auto run = model::run_protocol(g, protocol, coins, &pool);
    EXPECT_EQ(run.output, reference.output) << "at " << threads << " threads";
    expect_same_comm(reference.comm, run.comm, threads);
  }
}

TEST(ParallelDeterminism, SweepBitIdenticalAcrossThreadCounts) {
  const std::vector<std::size_t> budgets{1, 64, 2048};
  const scenario::Scenario* gnp_matching = scenario::find("gnp-matching");
  ASSERT_NE(gnp_matching, nullptr);
  const auto run_sweep = [&](parallel::ThreadPool* pool) {
    return core::sweep_budgets(*gnp_matching, budgets, /*trials=*/16,
                               /*seed=*/7, /*target_rate=*/0.99, pool);
  };

  parallel::ThreadPool serial(1);
  const core::SweepResult reference = run_sweep(&serial);
  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    const core::SweepResult result = run_sweep(&pool);
    EXPECT_EQ(result.threshold_budget, reference.threshold_budget)
        << "at " << threads << " threads";
    ASSERT_EQ(result.points.size(), reference.points.size());
    for (std::size_t p = 0; p < result.points.size(); ++p) {
      EXPECT_EQ(result.points[p].budget_bits, reference.points[p].budget_bits);
      EXPECT_EQ(result.points[p].trials, reference.points[p].trials);
      EXPECT_EQ(result.points[p].successes, reference.points[p].successes)
          << "budget " << budgets[p] << " at " << threads << " threads";
      EXPECT_EQ(result.points[p].max_bits_seen,
                reference.points[p].max_bits_seen);
      EXPECT_EQ(result.points[p].rate, reference.points[p].rate);
      EXPECT_EQ(result.points[p].ci.lo, reference.points[p].ci.lo);
      EXPECT_EQ(result.points[p].ci.hi, reference.points[p].ci.hi);
    }
  }
}

TEST(ParallelDeterminism, SweepMatchesPreParallelSerialSemantics) {
  // Guards the seed-derivation scheme itself: derive_seed(master, i) must
  // equal the mix64(master, i) the serial sweep used before the pool
  // existed, so historical sweep numbers remain reproducible.
  EXPECT_EQ(util::derive_seed(7, 3), util::mix64(7, 3));
  EXPECT_EQ(util::derive_seed(0, 0), util::mix64(0, 0));
  // And distinct trials get distinct, order-free seeds.
  EXPECT_NE(util::derive_seed(7, 3), util::derive_seed(7, 4));
  EXPECT_NE(util::derive_seed(7, 3), util::derive_seed(8, 3));
}

TEST(ParallelDeterminism, AuditedRunnerVerdictIdenticalAcrossThreadCounts) {
  util::Rng rng(17);
  const graph::Graph g = graph::gnp(80, 0.1, rng);
  const protocols::BudgetedMatching protocol(64);
  const audit::AuditedRunner runner(4242);

  parallel::ThreadPool serial(1);
  const auto reference = runner.run(g, protocol, &serial);
  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    const auto audited = runner.run(g, protocol, &pool);
    EXPECT_EQ(audited.output, reference.output)
        << "at " << threads << " threads";
    expect_same_comm(reference.comm, audited.comm, threads);
    EXPECT_EQ(audited.report.players_audited,
              reference.report.players_audited);
    EXPECT_EQ(audited.report.encode_calls, reference.report.encode_calls);
    EXPECT_EQ(audited.report.bits_verified, reference.report.bits_verified);
  }
}

TEST(ParallelDeterminism, AdaptiveRunIdenticalAcrossThreadCounts) {
  util::Rng rng(19);
  const graph::Graph g = graph::gnp(64, 0.15, rng);
  const protocols::TwoRoundMatching protocol(4, 8);
  const model::PublicCoins coins(99);

  parallel::ThreadPool serial(1);
  const auto reference = model::run_adaptive(g, protocol, coins, &serial);
  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    const auto run = model::run_adaptive(g, protocol, coins, &pool);
    EXPECT_EQ(run.output, reference.output) << "at " << threads << " threads";
    expect_same_comm(reference.comm, run.comm, threads);
    EXPECT_EQ(run.broadcast_bits, reference.broadcast_bits);
    ASSERT_EQ(run.by_round.size(), reference.by_round.size());
    for (std::size_t r = 0; r < run.by_round.size(); ++r) {
      expect_same_comm(reference.by_round[r], run.by_round[r], threads);
    }
  }
}

TEST(ParallelDeterminism, ProtocolSearchIdenticalAcrossThreadCounts) {
  const rs::RsGraph base = rs::book_rs(1, 2);

  parallel::ThreadPool serial(1);
  const auto reference =
      lowerbound::search_degree_protocols(base, 2, /*bits=*/1,
                                          /*degree_cap=*/3, &serial);
  for (const std::size_t threads : kThreadCounts) {
    parallel::ThreadPool pool(threads);
    const auto result = lowerbound::search_degree_protocols(
        base, 2, /*bits=*/1, /*degree_cap=*/3, &pool);
    EXPECT_EQ(result.best_success, reference.best_success)
        << "at " << threads << " threads";
    EXPECT_EQ(result.fano_cap_at_best, reference.fano_cap_at_best);
    EXPECT_EQ(result.protocols_searched, reference.protocols_searched);
    EXPECT_EQ(result.best_public_table, reference.best_public_table);
    EXPECT_EQ(result.best_unique_table, reference.best_unique_table);
    EXPECT_EQ(result.silent_baseline, reference.silent_baseline);
  }
}

}  // namespace
}  // namespace ds
