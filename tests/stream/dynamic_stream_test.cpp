#include "stream/dynamic_stream.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"

namespace ds::stream {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

TEST(DynamicConnectivity, InsertOnlyMatchesExact) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.06, rng);
  DynamicConnectivity stream(40, 99);
  for (const Edge& e : g.edges()) stream.insert(e.u, e.v);
  EXPECT_EQ(stream.query_components(),
            graph::connected_components(g).count);
  EXPECT_TRUE(graph::is_spanning_forest(g, stream.query_forest().forest));
}

TEST(DynamicConnectivity, DeletionsAreAbsorbedExactly) {
  // Insert a cycle, delete every other edge: the final graph is a known
  // union of paths.
  DynamicConnectivity stream(10, 7);
  const Graph c = graph::cycle(10);
  for (const Edge& e : c.edges()) stream.insert(e.u, e.v);
  EXPECT_EQ(stream.query_components(), 1u);
  stream.remove(0, 1);
  EXPECT_EQ(stream.query_components(), 1u);  // still a path
  stream.remove(5, 6);
  EXPECT_EQ(stream.query_components(), 2u);
}

TEST(DynamicConnectivity, InsertDeletePairsCancelCompletely) {
  DynamicConnectivity stream(20, 13);
  util::Rng rng(2);
  const Graph target = graph::gnp(20, 0.15, rng);
  const auto updates = scrambled_updates(target, /*spurious_pairs=*/30, rng);
  for (const EdgeUpdate& u : updates) stream.apply(u);
  EXPECT_EQ(stream.query_components(),
            graph::connected_components(target).count);
  EXPECT_TRUE(graph::is_spanning_forest(target, stream.query_forest().forest));
}

TEST(DynamicConnectivity, QueryDoesNotDisturbState) {
  DynamicConnectivity stream(12, 3);
  const Graph g = graph::path(12);
  for (const Edge& e : g.edges()) stream.insert(e.u, e.v);
  const auto first = stream.query_components();
  const auto second = stream.query_components();
  EXPECT_EQ(first, second);
  stream.insert(0, 11);  // close the cycle, still 1 component
  EXPECT_EQ(stream.query_components(), 1u);
}

TEST(DynamicConnectivity, MemoryIsPolylogPerVertex) {
  const DynamicConnectivity small(64, 1);
  const DynamicConnectivity large(512, 1);
  const double per_small =
      static_cast<double>(small.state_bits()) / 64.0;
  const double per_large =
      static_cast<double>(large.state_bits()) / 512.0;
  // Grows (more levels/rounds) but far slower than linearly in n.
  EXPECT_GT(per_large, per_small);
  EXPECT_LT(per_large, 3 * per_small);
}

TEST(InsertionMatching, InsertOnlyIsMaximal) {
  util::Rng rng(4);
  const Graph g = graph::gnp(50, 0.1, rng);
  InsertionGreedyMatching stream(50);
  std::vector<Edge> order = g.edges();
  rng.shuffle(std::span<Edge>(order));
  for (const Edge& e : order) stream.apply({e, true});
  EXPECT_TRUE(stream.valid());
  EXPECT_TRUE(graph::is_maximal_matching(g, stream.matching()));
}

TEST(InsertionMatching, DeletionOfMatchedEdgeInvalidates) {
  InsertionGreedyMatching stream(4);
  stream.apply({{0, 1}, true});
  stream.apply({{2, 3}, true});
  ASSERT_TRUE(stream.valid());
  stream.apply({{0, 1}, false});
  EXPECT_FALSE(stream.valid());
}

TEST(InsertionMatching, DeletionOfUnmatchedEdgeIsHarmless) {
  InsertionGreedyMatching stream(4);
  stream.apply({{0, 1}, true});
  stream.apply({{1, 2}, true});  // rejected, 1 already matched
  stream.apply({{1, 2}, false});
  EXPECT_TRUE(stream.valid());
  EXPECT_EQ(stream.matching().size(), 1u);
}

TEST(InsertionMatching, ContrastWithSketchedConnectivity) {
  // The same scrambled stream: connectivity sketches absorb the churn;
  // the greedy matching breaks as soon as a matched edge is deleted.
  util::Rng rng(5);
  const Graph target = graph::gnp(30, 0.12, rng);
  const auto updates = scrambled_updates(target, 40, rng);

  DynamicConnectivity connectivity(30, 6);
  InsertionGreedyMatching matching(30);
  for (const EdgeUpdate& u : updates) {
    connectivity.apply(u);
    matching.apply(u);
  }
  EXPECT_EQ(connectivity.query_components(),
            graph::connected_components(target).count);
  // With 40 spurious pairs, overwhelmingly one hits the greedy matching.
  EXPECT_FALSE(matching.valid());
}

TEST(ScrambledUpdates, NetEffectIsTarget) {
  util::Rng rng(6);
  const Graph target = graph::gnp(15, 0.2, rng);
  const auto updates = scrambled_updates(target, 10, rng);
  // Replay into a multiset and compare.
  std::map<std::pair<Vertex, Vertex>, int> count;
  for (const EdgeUpdate& u : updates) {
    const Edge e = u.edge.normalized();
    count[{e.u, e.v}] += u.insert ? 1 : -1;
  }
  std::size_t present = 0;
  for (const auto& [key, c] : count) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 1);
    if (c == 1) {
      EXPECT_TRUE(target.has_edge(key.first, key.second));
      ++present;
    }
  }
  EXPECT_EQ(present, target.num_edges());
}

}  // namespace
}  // namespace ds::stream
