// End-to-end harness test: plant a lint violation in a scratch source
// tree and assert that (a) the distsketch_lint binary and (b) the
// scripts/check.sh --lint-only entry point both exit nonzero — i.e. the
// commit-time gate actually gates.  A clean scratch tree must pass.
//
// Paths are injected by CMake: DISTSKETCH_LINT_BIN is the built binary,
// DISTSKETCH_REPO_ROOT the checkout (for check.sh and the manifests).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

class ScratchTree : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("distsketch_lint_harness_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src/model");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
    ASSERT_TRUE(out.good()) << "cannot write " << p;
  }

  // Runs `cmd` with cwd = repo root; returns the process exit code.
  static int run(const std::string& cmd) {
    const std::string full =
        "cd '" DISTSKETCH_REPO_ROOT "' && " + cmd + " > /dev/null 2>&1";
    const int status = std::system(full.c_str());
    if (status == -1 || !WIFEXITED(status)) return -1;
    return WEXITSTATUS(status);
  }

  int run_lint_binary() const {
    return run(std::string("'") + DISTSKETCH_LINT_BIN + "' --root '" +
               root_.string() +
               "' --layers tools/lint/layers.toml"
               " --owners tools/lint/obs_owners.toml");
  }

  int run_check_sh() const {
    return run("env DISTSKETCH_LINT_BIN='" DISTSKETCH_LINT_BIN
               "' bash scripts/check.sh --lint-only '" +
               root_.string() + "'");
  }

  fs::path root_;
};

constexpr const char* kCleanSource =
    "#include \"util/rng.h\"\n"
    "namespace ds::model {\n"
    "int pick(ds::util::Rng& rng) { return static_cast<int>(rng.next()); }\n"
    "}  // namespace ds::model\n";

constexpr const char* kViolatingSource =
    "#include <random>\n"
    "namespace ds::model {\n"
    "int pick() {\n"
    "  std::random_device rd;\n"  // determinism violation
    "  return static_cast<int>(rd());\n"
    "}\n"
    "}  // namespace ds::model\n";

TEST_F(ScratchTree, CleanTreePassesBinaryAndCheckScript) {
  write("src/model/pick.cpp", kCleanSource);
  EXPECT_EQ(run_lint_binary(), 0);
  EXPECT_EQ(run_check_sh(), 0);
}

TEST_F(ScratchTree, PlantedViolationFailsBinary) {
  write("src/model/pick.cpp", kViolatingSource);
  EXPECT_EQ(run_lint_binary(), 1);
}

TEST_F(ScratchTree, PlantedViolationFailsCheckScript) {
  write("src/model/pick.cpp", kViolatingSource);
  const int rc = run_check_sh();
  EXPECT_NE(rc, 0);
  EXPECT_NE(rc, -1);
}

// One planted violation per rule family; each must fail both the
// binary and the check.sh entry point (the acceptance bar for the
// lint being a real gate, not a report generator).
struct RuleSeed {
  const char* name;
  const char* rel;
  const char* source;
};

class ScratchTreePerRule : public ScratchTree,
                           public ::testing::WithParamInterface<RuleSeed> {};

TEST_P(ScratchTreePerRule, SeededViolationFailsBinaryAndCheckScript) {
  write(GetParam().rel, GetParam().source);
  EXPECT_EQ(run_lint_binary(), 1) << GetParam().name;
  EXPECT_EQ(run_check_sh(), 1) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    DistsketchLintGate, ScratchTreePerRule,
    ::testing::Values(
        RuleSeed{"charge_site", "src/protocols/cheat.cpp",
                 "#include \"model/comm_stats.h\"\n"
                 "namespace ds::protocols {\n"
                 "void undercharge(model::CommStats& stats) {\n"
                 "  stats.record(1);\n"
                 "}\n"
                 "}  // namespace ds::protocols\n"},
        RuleSeed{"determinism", "src/model/clocked.cpp",
                 "#include <ctime>\n"
                 "namespace ds::model {\n"
                 "long stamp() { return time(nullptr); }\n"
                 "}  // namespace ds::model\n"},
        RuleSeed{"unordered_iteration", "src/sketch/iterate.cpp",
                 "#include <unordered_map>\n"
                 "namespace ds::sketch {\n"
                 "int sum(const std::unordered_map<int, int>& m) {\n"
                 "  int s = 0;\n"
                 "  for (const auto& kv : m) s += kv.second;\n"
                 "  return s;\n"
                 "}\n"
                 "}  // namespace ds::sketch\n"},
        RuleSeed{"layering", "src/model/backdoor.cpp",
                 "#include \"service/session.h\"\n"
                 "namespace ds::model {\n"
                 "int through_the_wire() { return 1; }\n"
                 "}  // namespace ds::model\n"},
        RuleSeed{"obs_owner", "src/sketch/rogue_metric.cpp",
                 "#include \"obs/obs.h\"\n"
                 "namespace ds::sketch {\n"
                 "void touch() { obs::counter(\"model.encode.rogue\"); }\n"
                 "}  // namespace ds::sketch\n"},
        RuleSeed{"scenario_registry", "src/lowerbound/self_register.cpp",
                 "namespace ds::scenario { void register_scenario(void*); }\n"
                 "namespace ds::lowerbound {\n"
                 "void sneak() { ds::scenario::register_scenario(nullptr); }\n"
                 "}  // namespace ds::lowerbound\n"}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST_F(ScratchTree, JsonReportIsWrittenOnFailure) {
  write("src/model/pick.cpp", kViolatingSource);
  const fs::path report = root_ / "lint_report.json";
  const int rc = run(std::string("'") + DISTSKETCH_LINT_BIN + "' --root '" +
                     root_.string() + "' --json '" + report.string() +
                     "' --layers tools/lint/layers.toml"
                     " --owners tools/lint/obs_owners.toml");
  EXPECT_EQ(rc, 1);
  ASSERT_TRUE(fs::exists(report));
  std::ifstream in(report);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"determinism\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

}  // namespace
