// distsketch-lint fixture corpus + unit tests.
//
// Each fixture under tests/lint/fixtures/*.cc declares, in its leading
// comment lines, the repo path it pretends to live at and the rules it
// expects to fire:
//
//   // lint-fixture path=src/model/bad_seed.cpp
//   // lint-expect determinism            (one line per expected finding)
//   // lint-expect-suppressed charge-site (expected suppressed finding)
//
// No lint-expect line means the fixture must be clean.  Fixtures use
// the .cc extension so neither the lint pass itself nor check.sh's
// format/include checks ever scan them as first-party sources.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "driver.h"
#include "lexer.h"
#include "manifest.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;
using ds::lint::Finding;
using ds::lint::Report;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The committed manifests — fixtures are linted against the real
/// layer DAG and ownership table, so the corpus also pins those files.
std::string layers_toml() {
  return slurp(fs::path(DISTSKETCH_REPO_ROOT) / "tools/lint/layers.toml");
}
std::string owners_toml() {
  return slurp(fs::path(DISTSKETCH_REPO_ROOT) / "tools/lint/obs_owners.toml");
}

struct Fixture {
  std::string name;                         // file stem
  std::string declared_path;                // path= header
  std::vector<std::string> expect;          // rules expected to fire
  std::vector<std::string> expect_suppressed;
  std::string content;
};

Fixture load_fixture(const fs::path& file) {
  Fixture fx;
  fx.name = file.stem().string();
  fx.content = slurp(file);
  std::istringstream in(fx.content);
  std::string line;
  while (std::getline(in, line)) {
    const std::string path_tag = "// lint-fixture path=";
    const std::string expect_tag = "// lint-expect ";
    const std::string sup_tag = "// lint-expect-suppressed ";
    if (line.rfind(path_tag, 0) == 0) {
      fx.declared_path = line.substr(path_tag.size());
    } else if (line.rfind(sup_tag, 0) == 0) {
      fx.expect_suppressed.push_back(line.substr(sup_tag.size()));
    } else if (line.rfind(expect_tag, 0) == 0) {
      fx.expect.push_back(line.substr(expect_tag.size()));
    }
  }
  return fx;
}

std::vector<std::string> rule_names(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const Finding& f : fs) out.push_back(f.rule);
  std::sort(out.begin(), out.end());
  return out;
}

class LintFixtureCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(LintFixtureCorpus, FiresExactlyTheExpectedRules) {
  const fs::path file = fs::path(DISTSKETCH_LINT_FIXTURES) / GetParam();
  const Fixture fx = load_fixture(file);
  ASSERT_FALSE(fx.declared_path.empty())
      << GetParam() << ": missing `// lint-fixture path=...` header";

  const Report report = ds::lint::analyze(
      {{fx.declared_path, fx.content}}, layers_toml(), owners_toml());
  EXPECT_TRUE(report.config_errors.empty());

  std::vector<std::string> expected = fx.expect;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rule_names(report.violations), expected)
      << GetParam() << " violations mismatch";

  std::vector<std::string> expected_sup = fx.expect_suppressed;
  std::sort(expected_sup.begin(), expected_sup.end());
  EXPECT_EQ(rule_names(report.suppressed), expected_sup)
      << GetParam() << " suppressed mismatch";
  for (const Finding& f : report.suppressed) {
    EXPECT_FALSE(f.justification.empty())
        << GetParam() << ": suppressed finding without justification";
  }
}

std::vector<std::string> fixture_names() {
  std::vector<std::string> names;
  for (const auto& entry :
       fs::directory_iterator(fs::path(DISTSKETCH_LINT_FIXTURES))) {
    if (entry.path().extension() == ".cc") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

INSTANTIATE_TEST_SUITE_P(DistsketchLint, LintFixtureCorpus,
                         ::testing::ValuesIn(fixture_names()),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           n.resize(n.size() - 3);  // drop ".cc"
                           return n;
                         });

// ---------------------------------------------------------------------
// The corpus covers one fixture per rule in each direction; assert the
// corpus itself stays complete as rules are added.
// ---------------------------------------------------------------------

TEST(DistsketchLintCorpus, EveryRuleHasFiringAndNonFiringFixtures) {
  std::map<std::string, int> firing;
  std::map<std::string, int> clean;
  for (const std::string& name : fixture_names()) {
    const Fixture fx =
        load_fixture(fs::path(DISTSKETCH_LINT_FIXTURES) / name);
    for (const std::string& rule : fx.expect) ++firing[rule];
    if (fx.expect.empty()) {
      // Heuristic: clean fixtures are named after the rule they guard.
      const std::size_t cut = fx.name.find("_clean");
      const std::size_t scope = fx.name.find("_out_of_scope");
      const std::size_t pos = std::min(cut, scope);
      if (pos != std::string::npos) {
        std::string rule = fx.name.substr(0, pos);
        std::replace(rule.begin(), rule.end(), '_', '-');
        ++clean[rule];
      }
    }
  }
  for (const char* rule :
       {ds::lint::kRuleChargeSite, ds::lint::kRuleDeterminism,
        ds::lint::kRuleUnorderedIteration, ds::lint::kRuleLayering,
        ds::lint::kRuleObsOwner, ds::lint::kRuleScenarioRegistry}) {
    EXPECT_GE(firing[rule], 1) << "no firing fixture for " << rule;
    EXPECT_GE(clean[rule], 1) << "no non-firing fixture for " << rule;
  }
  EXPECT_GE(firing[ds::lint::kRuleBadSuppression], 1);
}

// ---------------------------------------------------------------------
// The committed tree itself must be lint-clean — the in-process twin of
// the CI gate, so a violation fails fast in every ctest run.
// ---------------------------------------------------------------------

TEST(DistsketchLintTree, CommittedTreeIsClean) {
  const std::vector<ds::lint::SourceFile> files =
      ds::lint::collect_sources(DISTSKETCH_REPO_ROOT);
  ASSERT_GT(files.size(), 100u) << "source collection looks broken";
  const Report report =
      ds::lint::analyze(files, layers_toml(), owners_toml());
  for (const std::string& e : report.config_errors) ADD_FAILURE() << e;
  for (const Finding& f : report.violations) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

// ---------------------------------------------------------------------
// Unit tests: lexer corner cases and manifest validation.
// ---------------------------------------------------------------------

TEST(DistsketchLintLexer, StripsCommentsAndStringsButKeepsIncludes) {
  const ds::lint::LexedFile lx = ds::lint::lex(
      "// mt19937 in a comment\n"
      "#include \"model/protocol.h\"\n"
      "#include <random>\n"
      "const char* s = \"std::random_device\"; /* rand() */\n"
      "int x = 1'000'000;\n");
  ASSERT_EQ(lx.includes.size(), 1u);
  EXPECT_EQ(lx.includes[0].path, "model/protocol.h");
  EXPECT_EQ(lx.includes[0].line, 2);
  ASSERT_EQ(lx.comments.size(), 2u);
  for (const ds::lint::Token& t : lx.tokens) {
    EXPECT_NE(t.text, "mt19937");
    EXPECT_NE(t.text, "random_device");
  }
  bool found_number = false;
  for (const ds::lint::Token& t : lx.tokens) {
    if (t.kind == ds::lint::TokKind::kNumber) {
      EXPECT_EQ(t.text, "1'000'000");
      found_number = true;
    }
  }
  EXPECT_TRUE(found_number);
}

TEST(DistsketchLintLexer, RawStringsAndLineNumbers) {
  const ds::lint::LexedFile lx = ds::lint::lex(
      "auto j = R\"({\"rand\": 1,\n\"time\": 2})\";\n"
      "int after = 3;\n");
  for (const ds::lint::Token& t : lx.tokens) {
    if (t.text == "after") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(DistsketchLintManifest, RejectsCyclesAndUnknownDeps) {
  ds::lint::ManifestError err;
  std::ignore = ds::lint::load_layer_manifest(
      "[layers]\na = [\"b\"]\nb = [\"a\"]\n", err);
  EXPECT_NE(err.message.find("cycle"), std::string::npos) << err.message;

  err = {};
  std::ignore =
      ds::lint::load_layer_manifest("[layers]\na = [\"ghost\"]\n", err);
  EXPECT_NE(err.message.find("ghost"), std::string::npos);

  err = {};
  std::ignore = ds::lint::load_layer_manifest("not toml at all\n", err);
  EXPECT_FALSE(err.message.empty());
}

TEST(DistsketchLintManifest, LongestPrefixOwnership) {
  ds::lint::ManifestError err;
  const ds::lint::OwnerManifest owners = ds::lint::load_owner_manifest(
      "[owners]\n"
      "\"service.\" = \"src/service/session.cpp\"\n"
      "\"service.decode_us\" = \"src/service/referee_service.h\"\n",
      err);
  ASSERT_TRUE(err.message.empty()) << err.message;
  EXPECT_EQ(owners.owner_of("service.frames"), "src/service/session.cpp");
  EXPECT_EQ(owners.owner_of("service.decode_us"),
            "src/service/referee_service.h");
  EXPECT_EQ(owners.owner_of("wire.tcp.bytes"), "");
}

TEST(DistsketchLintManifest, CommittedManifestsLoadClean) {
  ds::lint::ManifestError err;
  const ds::lint::LayerManifest layers =
      ds::lint::load_layer_manifest(layers_toml(), err);
  EXPECT_TRUE(err.message.empty()) << err.message;
  EXPECT_TRUE(layers.knows("util"));
  EXPECT_TRUE(layers.knows("engine"));
  EXPECT_TRUE(layers.allows("model", "engine"));
  EXPECT_FALSE(layers.allows("model", "service"));
  EXPECT_TRUE(layers.is_interface("model/protocol.h"));

  err = {};
  const ds::lint::OwnerManifest owners =
      ds::lint::load_owner_manifest(owners_toml(), err);
  EXPECT_TRUE(err.message.empty()) << err.message;
  EXPECT_EQ(owners.owner_of("model.encode.sketches"),
            "src/engine/instrumentation.cpp");
}

}  // namespace
