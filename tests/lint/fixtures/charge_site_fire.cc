// lint-fixture path=src/protocols/cheat.cpp
// lint-expect charge-site
// A protocol runner charging sketch bits directly instead of through
// engine::ChargeSheet::charge_round — the drift PR 5 eliminated.
#include "model/protocol.h"

namespace ds::protocols {

void charge_by_hand(std::size_t bits) {
  model::CommStats comm;
  comm.record(bits);  // must flow through ChargeSheet
}

}  // namespace ds::protocols
