// lint-fixture path=src/util/rng.cpp
// The one file allowed to touch raw engines: src/util/rng.* is the
// determinism seam itself (it documents why mt19937 is NOT used, and
// may reference banned names freely).
#include <random>

namespace ds::util {

unsigned rng_impl_notes() {
  using engine = std::mt19937;  // exempt inside the seam
  return engine::default_seed;
}

}  // namespace ds::util
