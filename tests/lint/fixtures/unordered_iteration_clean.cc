// lint-fixture path=src/sketch/sorted_order.cpp
// The sanctioned pattern: drain the unordered container into a sorted
// vector, then iterate that.  Lookups (no iteration order) are fine.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ds::sketch {

std::uint64_t sum_sorted(
    const std::unordered_map<std::uint32_t, std::uint64_t>& weights) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(
      weights.begin(), weights.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t acc = 0;
  for (const auto& [vertex, w] : sorted) {
    acc = acc * 31 + vertex + w;
  }
  return acc + weights.count(0);
}

}  // namespace ds::sketch
