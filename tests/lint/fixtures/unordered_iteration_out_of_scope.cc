// lint-fixture path=src/graph/components.cpp
// Outside src/{model,engine,sketch,lowerbound} the iteration-order
// rule does not apply: graph algorithms may iterate unordered sets
// when their result is order-insensitive.
#include <cstddef>
#include <unordered_set>

namespace ds::graph {

std::size_t count_even(const std::unordered_set<unsigned>& vertices) {
  std::size_t even = 0;
  for (unsigned v : vertices) {
    even += (v % 2 == 0) ? 1 : 0;
  }
  return even;
}

}  // namespace ds::graph
