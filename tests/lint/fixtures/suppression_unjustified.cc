// lint-fixture path=src/model/unjustified.cpp
// lint-expect determinism
// lint-expect bad-suppression
// An allow() without the `-- why` text does NOT suppress, and is
// itself flagged: every suppression must argue its soundness.
#include <chrono>

namespace ds::model {

long wall_clock() {
  // distsketch-lint: allow(determinism)
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace ds::model
