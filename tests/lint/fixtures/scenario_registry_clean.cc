// lint-fixture path=src/scenario/builtin.cpp
// The one blessed registration site: register_scenario here is exactly
// what the rule exists to protect.
#include "scenario/registry.h"

namespace ds::scenario::detail {

void register_builtins() {
  register_scenario(nullptr);
}

}  // namespace ds::scenario::detail
