// lint-fixture path=src/sketch/uses_model_types.cpp
// sketch -> model is not a manifest edge, but model/coins.h and
// model/protocol.h are declared interface headers (pure model
// vocabulary: PublicCoins, CommStats, VertexView) — including them
// creates no layering edge.
#include "model/coins.h"
#include "model/protocol.h"

namespace ds::sketch {

void fine() {}

}  // namespace ds::sketch
