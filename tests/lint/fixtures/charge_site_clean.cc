// lint-fixture path=src/protocols/honest.cpp
// Charging through the ChargeSheet seam: reading CommStats fields and
// merging stats is fine; only `.record(...)` is the guarded entry.
#include "engine/charge.h"
#include "model/protocol.h"

namespace ds::protocols {

std::size_t read_stats(const model::CommStats& comm) {
  model::CommStats merged;
  merged.merge(comm);
  return merged.max_bits + merged.total_bits;
}

}  // namespace ds::protocols
