// lint-fixture path=src/model/bad_seed.cpp
// lint-expect determinism
// lint-expect determinism
// lint-expect determinism
// lint-expect determinism
// Every classic nondeterminism source the rule bans, in one file.
#include <chrono>
#include <ctime>
#include <random>

#include "util/rng.h"

namespace ds::model {

std::uint64_t bad_seeds() {
  std::random_device rd;                    // fires: hardware entropy
  std::mt19937 engine(rd());                // fires: raw mt19937 seeding
  auto wall = time(nullptr);                // fires: wall-clock seed
  util::Rng trial_rng(42 + engine());       // fires: arithmetic seed
  return static_cast<std::uint64_t>(wall) + trial_rng.next();
}

}  // namespace ds::model
