// lint-fixture path=src/protocols/sneaky_registration.cpp
// lint-expect scenario-registry
// lint-expect scenario-registry
// Both the re-declaration and the call fire: a protocol quietly
// registering its own scenario would make the
// registry's contents depend on which translation units got linked —
// registration happens only in src/scenario/builtin.cpp.
namespace ds::scenario {
void register_scenario(void*);
}

namespace ds::protocols {

void self_register() {
  ds::scenario::register_scenario(nullptr);
}

}  // namespace ds::protocols
