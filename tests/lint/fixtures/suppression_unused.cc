// lint-fixture path=src/model/unused_allow.cpp
// lint-expect bad-suppression
// A suppression that matches no finding is dead weight (usually left
// behind by a refactor) and must be removed.
#include <cstdint>

namespace ds::model {

std::uint64_t nothing_to_suppress() {
  // distsketch-lint: allow(determinism) -- stale justification
  return 7;
}

}  // namespace ds::model
