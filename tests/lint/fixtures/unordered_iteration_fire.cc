// lint-fixture path=src/sketch/bucket_order.cpp
// lint-expect unordered-iteration
// Range-for over an unordered container inside a sketch encoder:
// bucket order is implementation-defined, so the emitted bits would
// differ across standard libraries — a silent determinism break.
#include <cstdint>
#include <unordered_map>

namespace ds::sketch {

std::uint64_t sum_in_bucket_order(
    const std::unordered_map<std::uint32_t, std::uint64_t>& weights) {
  std::uint64_t acc = 0;
  for (const auto& [vertex, w] : weights) {  // nondeterministic order
    acc = acc * 31 + vertex + w;
  }
  return acc;
}

}  // namespace ds::sketch
