// lint-fixture path=src/service/uses_lower_layers.cpp
// The service tier may depend on model, engine, and wire — all
// downward edges of the manifest DAG.
#include "engine/charge.h"
#include "model/protocol.h"
#include "service/session.h"
#include "wire/frame.h"

namespace ds::service {

void fine() {}

}  // namespace ds::service
