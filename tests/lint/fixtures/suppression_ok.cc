// lint-fixture path=src/model/justified.cpp
// lint-expect-suppressed determinism
// A justified allow() comment moves the finding to the suppressed
// list: it appears in lint_report.json but does not fail the run.
#include <chrono>

namespace ds::model {

long wall_clock_label() {
  // distsketch-lint: allow(determinism) -- label for a log file name only; never feeds protocol execution
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace ds::model
