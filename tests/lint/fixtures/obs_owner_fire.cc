// lint-fixture path=src/model/rogue_metrics.cpp
// lint-expect obs-owner
// lint-expect obs-owner
// Registering someone else's series re-creates the PR 5
// duplicate-registration drift; an unprefixed series has no declared
// owner at all.
#include "obs/obs.h"

namespace ds::model {

void register_elsewhere() {
  obs::counter("service.rounds_collected").increment();  // owner: session.cpp
  obs::histogram("rogue.unowned_series").record(1);      // no owner prefix
}

}  // namespace ds::model
