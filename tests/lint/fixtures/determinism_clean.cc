// lint-fixture path=src/model/good_seed.cpp
// The sanctioned pattern: counter-based derive_seed per trial.  The
// words mt19937 and random_device appearing in comments or strings
// (like this comment, or the literal below) must NOT fire — the lint
// tokenizes real code, not prose.
#include <string>

#include "util/rng.h"

namespace ds::model {

std::uint64_t good_seeds(std::uint64_t master, std::uint64_t trial) {
  util::Rng rng(util::derive_seed(master, trial));
  const std::string docs = "unlike std::mt19937 or std::random_device";
  return rng.next() + docs.size();
}

}  // namespace ds::model
