// lint-fixture path=src/model/peeks_at_referee.cpp
// lint-expect layering
// lint-expect layering
// A model-layer file reaching up into the service tier: exactly the
// back-edge through which referee-side knowledge could leak into a
// player's encoder, breaking §2.1 locality.
#include "model/protocol.h"
#include "service/session.h"
#include "wire/frame.h"

namespace ds::model {

void peek() {}

}  // namespace ds::model
