// lint-fixture path=src/engine/instrumentation.cpp
// The owner file registering its own series: model.* belongs to
// engine/instrumentation.cpp per tools/lint/obs_owners.toml.
#include "obs/obs.h"

namespace ds::engine::metrics {

ds::obs::Counter& encode_sketches() {
  static ds::obs::Counter& c = obs::counter("model.encode.sketches");
  return c;
}

}  // namespace ds::engine::metrics
