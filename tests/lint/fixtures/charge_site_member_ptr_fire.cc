// lint-fixture path=src/service/sneaky.cpp
// lint-expect charge-site
// Qualified access to CommStats::record (member pointer) is the same
// invariant violation as a direct call.
#include "model/protocol.h"

namespace ds::service {

auto steal_charge_fn() { return &model::CommStats::record; }

}  // namespace ds::service
