#include "protocols/bridge_finding.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

TEST(BridgeFinding, RecoversTheBridgeWithHighProbability) {
  util::Rng rng(1);
  int successes = 0;
  constexpr int kReps = 25;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const auto [g, bridge] = graph::two_clusters_with_bridge(60, 0.3, rng);
    const model::PublicCoins coins(900 + rep);
    const auto result =
        model::run_protocol(g, BridgeFinding{/*samples=*/8}, coins);
    if (result.output.normalized() == bridge.normalized()) ++successes;
  }
  EXPECT_GE(successes, kReps - 3);
}

TEST(BridgeFinding, SketchSizeIsLogarithmicInN) {
  util::Rng rng(2);
  const model::PublicCoins coins(3);
  const auto [small, b1] = graph::two_clusters_with_bridge(40, 0.4, rng);
  const auto [large, b2] = graph::two_clusters_with_bridge(400, 0.1, rng);
  const auto rs = model::run_protocol(small, BridgeFinding{8}, coins);
  const auto rl = model::run_protocol(large, BridgeFinding{8}, coins);
  // 10x the vertices, sketch growth only from ceil(log2 n): 6->9 bits per
  // sample plus the fixed 64-bit sum.
  EXPECT_LT(rl.comm.max_bits, rs.comm.max_bits * 2);
  EXPECT_LT(rl.comm.max_bits, 300u);
}

TEST(BridgeFinding, WorksWhenSamplingCatchesTheBridge) {
  // With samples >= degree, every vertex reports everything, the sampled
  // graph equals G (connected) and the cut-edge path must kick in.
  util::Rng rng(4);
  int successes = 0;
  constexpr int kReps = 10;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const auto [g, bridge] = graph::two_clusters_with_bridge(24, 0.5, rng);
    const model::PublicCoins coins(700 + rep);
    const auto result =
        model::run_protocol(g, BridgeFinding{1000}, coins);
    if (result.output.normalized() == bridge.normalized()) ++successes;
  }
  EXPECT_EQ(successes, kReps);
}

TEST(BridgeFinding, FailsGracefullyWhenSamplingTooSparse) {
  // One sample per vertex on sparse clusters: partition identification
  // can fail, but the protocol must return *something* (possibly the
  // {0,0} sentinel) without crashing.
  util::Rng rng(5);
  const auto [g, bridge] = graph::two_clusters_with_bridge(60, 0.08, rng);
  const model::PublicCoins coins(6);
  const auto result = model::run_protocol(g, BridgeFinding{1}, coins);
  (void)result.output;  // no crash is the assertion
}

}  // namespace
}  // namespace ds::protocols
