// Parameterized properties of the budgeted edge-report family — the
// protocol family every sweep in E3 runs.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/matching.h"
#include "model/runner.h"
#include "protocols/budgeted.h"
#include "protocols/sampled_matching.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

class BudgetSweepProps : public ::testing::TestWithParam<std::size_t> {
 protected:
  static Graph test_graph() {
    util::Rng rng(77);
    return graph::gnp(60, 0.25, rng);
  }
};

TEST_P(BudgetSweepProps, NeverExceedsBudget) {
  const Graph g = test_graph();
  const std::size_t budget = GetParam();
  const model::PublicCoins coins(budget);
  const auto run = model::run_protocol(g, BudgetedMatching{budget}, coins);
  EXPECT_LE(run.comm.max_bits, std::max<std::size_t>(budget, 1));
}

TEST_P(BudgetSweepProps, ReportsAreSubgraph) {
  const Graph g = test_graph();
  const model::PublicCoins coins(GetParam() + 1000);
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, BudgetedMatching{GetParam()}, coins, comm);
  const Graph reported = decode_reported_graph(g.num_vertices(), sketches);
  EXPECT_LE(reported.num_edges(), g.num_edges());
  for (const graph::Edge& e : reported.edges()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST_P(BudgetSweepProps, OutputIsAlwaysValidMatchingOfG) {
  const Graph g = test_graph();
  const model::PublicCoins coins(GetParam() + 2000);
  const auto run =
      model::run_protocol(g, BudgetedMatching{GetParam()}, coins);
  EXPECT_TRUE(graph::is_valid_matching(g, run.output));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepProps,
                         ::testing::Values(0, 1, 7, 13, 32, 64, 127, 256,
                                           511, 1024, 4096));

TEST(BudgetMonotonicity, KnowledgeGrowsWithBudget) {
  // Expected reported-edge count is nondecreasing in the budget (same
  // graph, same coins ladder).
  const Graph g = []() {
    util::Rng rng(88);
    return graph::gnp(60, 0.25, rng);
  }();
  std::size_t previous = 0;
  for (std::size_t budget : {8ULL, 32ULL, 128ULL, 512ULL, 4096ULL}) {
    std::size_t total = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const model::PublicCoins coins(seed);
      model::CommStats comm;
      const auto sketches =
          model::collect_sketches(g, BudgetedMatching{budget}, coins, comm);
      total +=
          decode_reported_graph(g.num_vertices(), sketches).num_edges();
    }
    EXPECT_GE(total + 5, previous) << "budget " << budget;  // slack for ties
    previous = total;
  }
  // And the top budget reports everything.
  const model::PublicCoins coins(0);
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, BudgetedMatching{1 << 20}, coins, comm);
  EXPECT_EQ(decode_reported_graph(g.num_vertices(), sketches), g);
}

}  // namespace
}  // namespace ds::protocols
