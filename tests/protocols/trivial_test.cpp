#include "protocols/trivial.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/independent_set.h"
#include "graph/matching.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

using graph::Graph;

TEST(Trivial, FullGraphReconstruction) {
  util::Rng rng(1);
  const Graph g = graph::gnp(30, 0.2, rng);
  const model::PublicCoins coins(2);
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, TrivialMaximalMatching{}, coins, comm);
  EXPECT_EQ(decode_full_graph(g.num_vertices(), sketches), g);
}

TEST(Trivial, CostIsExactlyNBitsPerPlayer) {
  util::Rng rng(3);
  const Graph g = graph::gnp(45, 0.1, rng);
  const model::PublicCoins coins(4);
  const auto result = model::run_protocol(g, TrivialMaximalMatching{}, coins);
  EXPECT_EQ(result.comm.max_bits, 45u);
  EXPECT_EQ(result.comm.total_bits, 45u * 45u);
}

TEST(Trivial, MatchingAlwaysMaximal) {
  util::Rng rng(5);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::gnp(35, 0.15, rng);
    const model::PublicCoins coins(100 + rep);
    const auto result =
        model::run_protocol(g, TrivialMaximalMatching{}, coins);
    EXPECT_TRUE(graph::is_maximal_matching(g, result.output));
  }
}

TEST(Trivial, MisAlwaysMaximal) {
  util::Rng rng(6);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::gnp(35, 0.15, rng);
    const model::PublicCoins coins(200 + rep);
    const auto result = model::run_protocol(g, TrivialMis{}, coins);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.output));
  }
}

TEST(Trivial, WorksOnEdgelessAndComplete) {
  const model::PublicCoins coins(7);
  const Graph empty(10);
  EXPECT_TRUE(model::run_protocol(empty, TrivialMaximalMatching{}, coins)
                  .output.empty());
  EXPECT_EQ(model::run_protocol(empty, TrivialMis{}, coins).output.size(),
            10u);
  const Graph k6 = graph::complete(6);
  EXPECT_EQ(
      model::run_protocol(k6, TrivialMaximalMatching{}, coins).output.size(),
      3u);
  EXPECT_EQ(model::run_protocol(k6, TrivialMis{}, coins).output.size(), 1u);
}

}  // namespace
}  // namespace ds::protocols
