#include "protocols/luby_bcc.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/independent_set.h"
#include "model/adaptive.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(LubyBcc, ProducesMisOnRandomGraphs) {
  util::Rng rng(1);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::gnp(60, 0.1, rng);
    const model::PublicCoins coins(100 + rep);
    const auto protocol = make_luby_bcc(g.num_vertices());
    const auto run = model::run_adaptive(g, protocol, coins);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, run.output))
        << "rep " << rep;
  }
}

TEST(LubyBcc, StructuredGraphs) {
  const model::PublicCoins coins(2);
  for (const Graph& g :
       {graph::path(30), graph::cycle(31), graph::complete(12), Graph(9)}) {
    const auto protocol = make_luby_bcc(std::max<Vertex>(g.num_vertices(), 2));
    const auto run = model::run_adaptive(g, protocol, coins);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, run.output));
  }
}

TEST(LubyBcc, PerPlayerCostIsTwoBitsPerPhase) {
  util::Rng rng(3);
  const Graph g = graph::gnp(100, 0.08, rng);
  const model::PublicCoins coins(4);
  const auto protocol = make_luby_bcc(100);
  const auto run = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, run.output));
  // Exactly one bit per round per player.
  EXPECT_EQ(run.comm.max_bits, protocol.num_rounds());
  for (const auto& round : run.by_round) {
    EXPECT_EQ(round.max_bits, 1u);
  }
}

TEST(LubyBcc, TotalBitsAreLogarithmicNotSqrt) {
  // The rounds-vs-bits tradeoff: O(log n) rounds at O(log n) total bits,
  // far below the one-round sqrt(n) wall and the two-round sqrt(n) cost.
  util::Rng rng(5);
  const Graph g = graph::gnp(400, 0.02, rng);
  const model::PublicCoins coins(6);
  const auto protocol = make_luby_bcc(400);
  const auto run = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, run.output));
  EXPECT_LT(run.comm.max_bits, 64u);  // ~2 * (2 log2 400 + 4) bits
}

TEST(LubyBcc, PrioritiesArePublicCoinShared) {
  const model::PublicCoins coins(7);
  for (Vertex v = 0; v < 10; ++v) {
    for (unsigned phase = 0; phase < 5; ++phase) {
      EXPECT_EQ(LubyBroadcastMis::priority(coins, v, phase),
                LubyBroadcastMis::priority(coins, v, phase));
    }
  }
  EXPECT_NE(LubyBroadcastMis::priority(coins, 1, 1),
            LubyBroadcastMis::priority(coins, 1, 2));
}

TEST(LubyBcc, TooFewPhasesDegradesGracefully) {
  // With one phase the output is an independent set (one Luby step) but
  // rarely maximal on a large sparse graph.
  util::Rng rng(8);
  const Graph g = graph::gnp(80, 0.05, rng);
  const model::PublicCoins coins(9);
  const LubyBroadcastMis protocol(1);
  const auto run = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(graph::is_independent_set(g, run.output));
  EXPECT_FALSE(graph::is_maximal_independent_set(g, run.output));
}

}  // namespace
}  // namespace ds::protocols
