#include "protocols/budgeted_two_round.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/matching.h"
#include "lowerbound/dmm.h"
#include "model/adaptive.h"
#include "rs/rs_graph.h"

namespace ds::protocols {
namespace {

using graph::Graph;

TEST(BudgetedTwoRound, GenerousBudgetsAreMaximal) {
  util::Rng rng(1);
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    const Graph g = graph::gnp(60, 0.12, rng);
    const model::PublicCoins coins(100 + rep);
    const BudgetedTwoRoundMatching protocol(1 << 14, 1 << 14);
    const auto run = model::run_adaptive(g, protocol, coins);
    EXPECT_TRUE(graph::is_maximal_matching(g, run.output));
  }
}

TEST(BudgetedTwoRound, OutputAlwaysValid) {
  util::Rng rng(2);
  for (std::size_t budget : {16ULL, 64ULL, 256ULL}) {
    const Graph g = graph::gnp(50, 0.2, rng);
    const model::PublicCoins coins(200 + budget);
    const BudgetedTwoRoundMatching protocol(budget, budget);
    const auto run = model::run_adaptive(g, protocol, coins);
    EXPECT_TRUE(graph::is_valid_matching(g, run.output));
  }
}

TEST(BudgetedTwoRound, RespectsPerRoundBudgets) {
  util::Rng rng(3);
  const Graph g = graph::gnp(80, 0.3, rng);
  const model::PublicCoins coins(4);
  const BudgetedTwoRoundMatching protocol(100, 50);
  const auto run = model::run_adaptive(g, protocol, coins);
  ASSERT_EQ(run.by_round.size(), 2u);
  EXPECT_LE(run.by_round[0].max_bits, 100u);
  EXPECT_LE(run.by_round[1].max_bits, 50u);
}

TEST(BudgetedTwoRound, AdaptivityBeatsOneRoundOnDmm) {
  // Same TOTAL budget: one-round protocols must spread it blindly; the
  // two-round protocol spends round 1 only on the residual. At a budget
  // where the one-round protocol is far from maximal, the two-round one
  // already succeeds most of the time.
  const rs::RsGraph base = rs::rs_graph(12);
  util::Rng rng(5);
  std::size_t two_round_ok = 0, one_round_ok = 0;
  constexpr std::size_t kTrials = 8;
  const std::size_t half_budget = 60;  // r*log n ~ 54 here; half each round
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto inst = lowerbound::sample_dmm(base, base.t(), rng);
    const model::PublicCoins coins(util::mix64(300, trial));
    const BudgetedTwoRoundMatching two(half_budget, half_budget);
    const auto run2 = model::run_adaptive(inst.g, two, coins);
    two_round_ok += graph::is_maximal_matching(inst.g, run2.output);

    // One round with the combined budget.
    const BudgetedTwoRoundMatching one(2 * half_budget, 0);
    const auto run1 = model::run_adaptive(inst.g, one, coins);
    one_round_ok += graph::is_maximal_matching(inst.g, run1.output);
  }
  EXPECT_GE(two_round_ok, one_round_ok);
}

TEST(BudgetedTwoRound, ZeroBudgetsProduceEmptyMatching) {
  util::Rng rng(6);
  const Graph g = graph::gnp(30, 0.2, rng);
  const model::PublicCoins coins(7);
  const BudgetedTwoRoundMatching protocol(0, 0);
  const auto run = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(run.output.empty());
}

}  // namespace
}  // namespace ds::protocols
