#include "protocols/coloring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

bool is_proper_coloring(const Graph& g, const model::ColoringOutput& colors,
                        std::uint32_t num_colors) {
  if (colors.size() != g.num_vertices()) return false;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] == kUncolored || colors[v] >= num_colors) return false;
    for (Vertex w : g.neighbors(v)) {
      if (colors[v] == colors[w]) return false;
    }
  }
  return true;
}

PaletteSparsificationColoring make_protocol(const Graph& g) {
  const std::uint32_t num_colors = g.max_degree() + 1;
  const std::uint32_t list_size = static_cast<std::uint32_t>(
      4 * std::log2(static_cast<double>(g.num_vertices()) + 2) + 4);
  return PaletteSparsificationColoring{num_colors, list_size};
}

TEST(Coloring, ColorListsArePublicCoinShared) {
  const model::PublicCoins coins(1);
  const PaletteSparsificationColoring protocol{16, 5};
  for (Vertex v = 0; v < 20; ++v) {
    const auto a = protocol.color_list(coins, v);
    const auto b = protocol.color_list(coins, v);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 5u);
    for (std::uint32_t c : a) EXPECT_LT(c, 16u);
  }
}

TEST(Coloring, ProperColoringOnRandomGraphs) {
  util::Rng rng(2);
  int successes = 0;
  constexpr int kReps = 10;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(60, 0.15, rng);
    const auto protocol = make_protocol(g);
    const model::PublicCoins coins(800 + rep);
    const auto result = model::run_protocol(g, protocol, coins);
    if (is_proper_coloring(g, result.output, g.max_degree() + 1)) {
      ++successes;
    }
  }
  EXPECT_GE(successes, kReps - 1);
}

TEST(Coloring, CliqueNeedsAllColors) {
  // K_n with Delta+1 = n colors: palette sparsification must still find a
  // proper coloring (a system of distinct representatives of the lists).
  const Graph g = graph::complete(12);
  const auto protocol = make_protocol(g);
  const model::PublicCoins coins(3);
  const auto result = model::run_protocol(g, protocol, coins);
  EXPECT_TRUE(is_proper_coloring(g, result.output, 12));
}

TEST(Coloring, SketchSizeIsPolylog) {
  util::Rng rng(4);
  const model::PublicCoins coins(5);
  const Graph small = graph::gnp(64, 0.2, rng);
  const Graph large = graph::gnp(512, 0.05, rng);
  const auto rs = model::run_protocol(small, make_protocol(small), coins);
  const auto rl = model::run_protocol(large, make_protocol(large), coins);
  // Conflict degree ~ list^2/colors stays polylog; the per-player bits
  // must grow far slower than n.
  EXPECT_LT(static_cast<double>(rl.comm.max_bits) / 512.0,
            static_cast<double>(rs.comm.max_bits) / 64.0);
}

TEST(Coloring, EdgelessGraphTrivial) {
  const Graph g(10);
  const PaletteSparsificationColoring protocol{1, 1};
  const model::PublicCoins coins(6);
  const auto result = model::run_protocol(g, protocol, coins);
  EXPECT_TRUE(is_proper_coloring(g, result.output, 1));
}

TEST(Coloring, PathWithTwoColorsViaDelta1) {
  const Graph g = graph::path(20);  // Delta = 2, palette 3
  const PaletteSparsificationColoring protocol{3, 3};
  const model::PublicCoins coins(7);
  const auto result = model::run_protocol(g, protocol, coins);
  EXPECT_TRUE(is_proper_coloring(g, result.output, 3));
}

}  // namespace
}  // namespace ds::protocols
