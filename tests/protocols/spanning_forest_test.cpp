#include "protocols/spanning_forest.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

using graph::Graph;

TEST(AgmProtocol, SolvesRandomGraphs) {
  util::Rng rng(1);
  int successes = 0;
  constexpr int kReps = 15;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(30, 0.15, rng);
    const model::PublicCoins coins(500 + rep);
    const auto result = model::run_protocol(g, AgmSpanningForest{}, coins);
    if (graph::is_spanning_forest(g, result.output)) ++successes;
  }
  EXPECT_GE(successes, kReps - 2);
}

TEST(AgmProtocol, SketchSizesArePolylogNotLinear) {
  // The headline contrast: AGM bits/player grows polylogarithmically
  // while the trivial protocol is n bits/player.
  util::Rng rng(2);
  const model::PublicCoins coins(3);

  const Graph small = graph::gnp(64, 0.2, rng);
  const Graph large = graph::gnp(512, 0.05, rng);
  const auto rs = model::run_protocol(small, AgmSpanningForest{}, coins);
  const auto rl = model::run_protocol(large, AgmSpanningForest{}, coins);
  // 8x more vertices, but sketch growth bounded by ~2.5x (log factors).
  EXPECT_LT(rl.comm.max_bits, 3 * rs.comm.max_bits);
  // And already below the trivial n bits/player at n = 512? AGM constants
  // are real: just require it beats n at a larger scale computationally:
  // bits(512)/512 < bits(64)/64 * 0.5 demonstrates the crossover trend.
  EXPECT_LT(static_cast<double>(rl.comm.max_bits) / 512.0,
            0.5 * static_cast<double>(rs.comm.max_bits) / 64.0);
}

TEST(AgmProtocol, AllPlayersSendEqualSizeSketches) {
  util::Rng rng(4);
  const Graph g = graph::gnp(40, 0.3, rng);
  const model::PublicCoins coins(5);
  const auto result = model::run_protocol(g, AgmSpanningForest{}, coins);
  EXPECT_NEAR(result.comm.avg_bits(),
              static_cast<double>(result.comm.max_bits), 1e-9);
}

TEST(AgmProtocol, HandlesDisconnectedInput) {
  const model::PublicCoins coins(6);
  const Graph g = Graph::from_edges(
      12, std::vector<graph::Edge>{{0, 1}, {1, 2}, {5, 6}, {8, 9}});
  const auto result = model::run_protocol(g, AgmSpanningForest{}, coins);
  EXPECT_TRUE(graph::is_spanning_forest(g, result.output));
}

TEST(AgmProtocol, EmptyEdgeSet) {
  const model::PublicCoins coins(7);
  const Graph g(8);
  const auto result = model::run_protocol(g, AgmSpanningForest{}, coins);
  EXPECT_TRUE(result.output.empty());
}

}  // namespace
}  // namespace ds::protocols
