// Negative tests for the public-coin requirement: protocols built on
// shared hash functions (AGM) silently break when players and referee
// disagree on the coins, while the footnote-1 protocol's *sum* component
// needs no shared randomness at all.  This is the [BMRT14]-flavored
// public-vs-private-coin distinction from related work, made concrete.
#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/spanning_forest.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(CoinMismatch, AgmDecodeWithWrongCoinsFails) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins player_coins(111);
  const model::PublicCoins referee_coins(222);  // mismatch!

  const AgmSpanningForest protocol;
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, protocol, player_coins, comm);
  const auto output = protocol.decode(g.num_vertices(), sketches,
                                      referee_coins);
  // With mismatched level hashes and fingerprints, essentially nothing
  // decodes: the forest is far from spanning (fingerprints reject the
  // garbage rather than fabricating edges).
  EXPECT_FALSE(graph::is_spanning_forest(g, output));
  EXPECT_LT(output.size(), g.num_vertices() / 4);
}

TEST(CoinMismatch, MatchedCoinsRecover) {
  // Control for the test above: same pipeline, same seed on both sides.
  util::Rng rng(2);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins coins(333);
  const AgmSpanningForest protocol;
  model::CommStats comm;
  const auto sketches = model::collect_sketches(g, protocol, coins, comm);
  const auto output = protocol.decode(g.num_vertices(), sketches, coins);
  EXPECT_TRUE(graph::is_spanning_forest(g, output));
}

TEST(CoinMismatch, FingerprintsRejectRatherThanFabricate) {
  // The decoded edges under mismatched coins must still be *plausible
  // ids* (in range); we additionally check the false-accept rate is tiny
  // by counting decoded edges that are not real graph edges.
  util::Rng rng(3);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins player_coins(444);
  const model::PublicCoins referee_coins(555);
  const AgmSpanningForest protocol;
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, protocol, player_coins, comm);
  const auto output =
      protocol.decode(g.num_vertices(), sketches, referee_coins);
  std::size_t fabricated = 0;
  for (const graph::Edge& e : output) {
    if (!g.has_edge(e.u, e.v)) ++fabricated;
  }
  EXPECT_EQ(fabricated, 0u);
}

}  // namespace
}  // namespace ds::protocols
