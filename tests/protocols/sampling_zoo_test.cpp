#include "protocols/sampling_zoo.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(EdgeCount, ExactOnSmallGraphs) {
  util::Rng rng(1);
  const Graph g = graph::gnp(30, 0.1, rng);  // ~45 edges < k
  const model::PublicCoins coins(2);
  const auto run = model::run_protocol(g, EdgeCountEstimate{256}, coins);
  EXPECT_DOUBLE_EQ(run.output, static_cast<double>(g.num_edges()));
}

TEST(EdgeCount, ApproximateOnLargeGraphs) {
  util::Rng rng(3);
  const Graph g = graph::gnp(150, 0.3, rng);  // ~3350 edges >> k
  const model::PublicCoins coins(4);
  const auto run = model::run_protocol(g, EdgeCountEstimate{128}, coins);
  EXPECT_NEAR(run.output, static_cast<double>(g.num_edges()),
              0.35 * static_cast<double>(g.num_edges()));
}

TEST(EdgeCount, SketchSizeBoundedByK) {
  util::Rng rng(5);
  const Graph g = graph::gnp(100, 0.5, rng);
  const model::PublicCoins coins(6);
  const std::uint32_t k = 64;
  const auto run = model::run_protocol(g, EdgeCountEstimate{k}, coins);
  // Each sketch holds <= k values of 61 bits plus a small header.
  EXPECT_LE(run.comm.max_bits, k * 61 + 32);
}

TEST(SampledDensest, SharedSamplingIsConsistent) {
  const model::PublicCoins coins(7);
  // Both endpoints decide identically for any edge id.
  for (std::uint64_t id = 0; id < 200; ++id) {
    EXPECT_EQ(SampledDensestSubgraph::sampled(coins, id, 0.3),
              SampledDensestSubgraph::sampled(coins, id, 0.3));
  }
  // Rate is ~p.
  std::size_t hits = 0;
  constexpr std::uint64_t kIds = 20000;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    hits += SampledDensestSubgraph::sampled(coins, id, 0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / kIds, 0.3, 0.02);
}

TEST(SampledDensest, FullSampleMatchesExactPeel) {
  util::Rng rng(8);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins coins(9);
  const auto run =
      model::run_protocol(g, SampledDensestSubgraph{1.0}, coins);
  const auto exact = graph::densest_subgraph_peel(g);
  EXPECT_DOUBLE_EQ(run.output.density, exact.density);
  EXPECT_EQ(run.output.subset, exact.subset);
}

TEST(SampledDensest, FindsPlantedDenseCore) {
  // K10 planted in sparse noise; with p = 0.5 the sampled core keeps
  // density ~4.5/0.5 = 9... estimate must land near the true 4.5 and the
  // subset must be mostly core vertices.
  util::Rng rng(10);
  std::vector<graph::Edge> edges;
  for (Vertex u = 0; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) edges.push_back({u, v});
  for (Vertex v = 10; v < 100; ++v) {
    edges.push_back({v, static_cast<Vertex>(rng.next_below(v))});
  }
  const Graph g = Graph::from_edges(100, edges);
  const double true_density = graph::densest_subgraph_peel(g).density;

  const model::PublicCoins coins(11);
  const auto run =
      model::run_protocol(g, SampledDensestSubgraph{0.5}, coins);
  EXPECT_NEAR(run.output.density, true_density, 0.5 * true_density);
  std::size_t core = 0;
  for (Vertex v : run.output.subset) core += v < 10;
  EXPECT_GE(core, 8u);
}

TEST(SampledDensest, CostScalesWithSampleRate) {
  util::Rng rng(12);
  const Graph g = graph::gnp(80, 0.4, rng);
  const model::PublicCoins coins(13);
  const auto cheap = model::run_protocol(g, SampledDensestSubgraph{0.1}, coins);
  const auto full = model::run_protocol(g, SampledDensestSubgraph{1.0}, coins);
  EXPECT_LT(cheap.comm.max_bits, full.comm.max_bits / 3);
}

TEST(SampledSubgraph, CutSparsifierQuality) {
  // |cut_sample(S)| / p approximates |cut_G(S)| over random bisections.
  util::Rng rng(20);
  const Graph g = graph::gnp(120, 0.3, rng);
  const model::PublicCoins coins(21);
  const double p = 0.4;
  const auto run = model::run_protocol(g, SampledSubgraph{p}, coins);
  const Graph& sample = run.output;

  double worst_ratio = 1.0;
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<bool> in_s(g.num_vertices());
    for (Vertex v = 0; v < g.num_vertices(); ++v) in_s[v] = rng.next_bit();
    std::size_t cut_g = 0, cut_sample = 0;
    for (const graph::Edge& e : g.edges()) {
      if (in_s[e.u] != in_s[e.v]) ++cut_g;
    }
    for (const graph::Edge& e : sample.edges()) {
      if (in_s[e.u] != in_s[e.v]) ++cut_sample;
    }
    ASSERT_GT(cut_g, 0u);
    const double estimate = static_cast<double>(cut_sample) / p;
    const double ratio = estimate / static_cast<double>(cut_g);
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
  }
  // Random bisection cuts here have ~1000 edges; sampling noise is a few
  // percent. 1.2 is a generous bound.
  EXPECT_LT(worst_ratio, 1.2);
}

TEST(SampledSubgraph, SampleRateConcentrates) {
  util::Rng rng(22);
  const Graph g = graph::gnp(150, 0.2, rng);
  const model::PublicCoins coins(23);
  const auto run = model::run_protocol(g, SampledSubgraph{0.25}, coins);
  EXPECT_NEAR(static_cast<double>(run.output.num_edges()),
              0.25 * static_cast<double>(g.num_edges()),
              0.05 * static_cast<double>(g.num_edges()));
}

TEST(SampledDegeneracy, FullSampleExact) {
  util::Rng rng(14);
  const Graph g = graph::gnp(50, 0.15, rng);
  const model::PublicCoins coins(15);
  const auto run = model::run_protocol(g, SampledDegeneracy{1.0}, coins);
  EXPECT_DOUBLE_EQ(run.output, static_cast<double>(graph::degeneracy(g)));
}

TEST(SampledDegeneracy, HalfSampleInRange) {
  util::Rng rng(16);
  const Graph g = graph::gnp(120, 0.25, rng);  // degeneracy ~ 20+
  const model::PublicCoins coins(17);
  const double truth = static_cast<double>(graph::degeneracy(g));
  const auto run = model::run_protocol(g, SampledDegeneracy{0.5}, coins);
  EXPECT_NEAR(run.output, truth, 0.5 * truth);
}

}  // namespace
}  // namespace ds::protocols
