#include "protocols/budgeted.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/independent_set.h"
#include "graph/matching.h"
#include "model/runner.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"

namespace ds::protocols {
namespace {

using graph::Graph;

TEST(Budgeted, EdgesFittingBudgetArithmetic) {
  // width = 10 for n = 1024; gamma header for count c is
  // 2*floor(log2(c+1))+1 bits.
  const graph::Vertex n = 1024;
  EXPECT_EQ(edges_fitting_budget(0, n, 100), 0u);
  EXPECT_EQ(edges_fitting_budget(10, n, 100), 0u);   // header+1 edge = 13
  EXPECT_EQ(edges_fitting_budget(13, n, 100), 1u);   // 3 + 10
  EXPECT_EQ(edges_fitting_budget(25, n, 100), 2u);   // 5 + 20
  EXPECT_GE(edges_fitting_budget(10000, n, 100), 100u);  // capped by degree
}

TEST(Budgeted, BudgetIsRespected) {
  util::Rng rng(1);
  const Graph g = graph::gnp(100, 0.3, rng);
  for (std::size_t budget : {0ULL, 16ULL, 64ULL, 256ULL, 1024ULL}) {
    const model::PublicCoins coins(2);
    const auto result =
        model::run_protocol(g, BudgetedMatching{budget}, coins);
    EXPECT_LE(result.comm.max_bits, std::max<std::size_t>(budget, 1))
        << "budget " << budget;
  }
}

TEST(Budgeted, ReportedGraphIsSubgraph) {
  util::Rng rng(3);
  const Graph g = graph::gnp(60, 0.2, rng);
  const model::PublicCoins coins(4);
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, BudgetedMatching{100}, coins, comm);
  const Graph reported = decode_reported_graph(g.num_vertices(), sketches);
  for (const graph::Edge& e : reported.edges()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(Budgeted, LargeBudgetReportsEverything) {
  util::Rng rng(5);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins coins(6);
  model::CommStats comm;
  const auto sketches =
      model::collect_sketches(g, BudgetedMatching{100000}, coins, comm);
  EXPECT_EQ(decode_reported_graph(g.num_vertices(), sketches), g);
}

TEST(Budgeted, MatchingSucceedsWithFullBudgetFailsWithNone) {
  util::Rng rng(7);
  const Graph g = graph::gnp(50, 0.15, rng);
  const model::PublicCoins coins(8);
  const auto full = model::run_protocol(g, BudgetedMatching{100000}, coins);
  EXPECT_TRUE(graph::is_maximal_matching(g, full.output));
  const auto none = model::run_protocol(g, BudgetedMatching{0}, coins);
  EXPECT_FALSE(graph::is_maximal_matching(g, none.output));
}

TEST(Budgeted, MatchingOutputAlwaysValidEdges) {
  // Edge-report protocols only ever output real edges (they may fail
  // maximality, not validity).
  util::Rng rng(9);
  for (std::size_t budget : {20ULL, 60ULL, 200ULL}) {
    const Graph g = graph::gnp(50, 0.2, rng);
    const model::PublicCoins coins(10 + budget);
    const auto result =
        model::run_protocol(g, BudgetedMatching{budget}, coins);
    EXPECT_TRUE(graph::is_valid_matching(g, result.output));
  }
}

TEST(Budgeted, MisCanViolateIndependenceUnderTightBudget) {
  // On a dense graph with tiny budget the referee misses most edges and
  // the greedy MIS over the known subgraph usually includes an adjacent
  // pair.  (Statistical, but overwhelmingly likely at these parameters.)
  util::Rng rng(11);
  const Graph g = graph::gnp(60, 0.5, rng);
  int violations = 0;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const model::PublicCoins coins(300 + rep);
    const auto result = model::run_protocol(g, BudgetedMis{8}, coins);
    if (!graph::is_independent_set(g, result.output)) ++violations;
  }
  EXPECT_GT(violations, 5);
}

TEST(Budgeted, MisSucceedsWithFullBudget) {
  util::Rng rng(12);
  const Graph g = graph::gnp(40, 0.2, rng);
  const model::PublicCoins coins(13);
  const auto result = model::run_protocol(g, BudgetedMis{100000}, coins);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, result.output));
}

TEST(Budgeted, DeterministicGivenCoins) {
  util::Rng rng(14);
  const Graph g = graph::gnp(30, 0.3, rng);
  const model::PublicCoins coins(15);
  const auto a = model::run_protocol(g, BudgetedMatching{64}, coins);
  const auto b = model::run_protocol(g, BudgetedMatching{64}, coins);
  EXPECT_EQ(a.output, b.output);
}

}  // namespace
}  // namespace ds::protocols
