#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/independent_set.h"
#include "graph/matching.h"
#include "model/adaptive.h"
#include "protocols/two_round_matching.h"
#include "protocols/two_round_mis.h"

namespace ds::protocols {
namespace {

using graph::Graph;

TEST(TwoRoundMatching, MaximalOnRandomGraphs) {
  util::Rng rng(1);
  int successes = 0;
  constexpr int kReps = 15;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(80, 0.1, rng);
    const model::PublicCoins coins(400 + rep);
    const std::size_t c = static_cast<std::size_t>(std::sqrt(80.0)) + 2;
    const auto result =
        model::run_adaptive(g, TwoRoundMatching{c, 80}, coins);
    if (graph::is_maximal_matching(g, result.output)) ++successes;
  }
  EXPECT_GE(successes, kReps - 1);
}

TEST(TwoRoundMatching, OutputIsAlwaysValidMatching) {
  util::Rng rng(2);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::gnp(60, 0.2, rng);
    const model::PublicCoins coins(500 + rep);
    const auto result = model::run_adaptive(g, TwoRoundMatching{4, 10}, coins);
    EXPECT_TRUE(graph::is_valid_matching(g, result.output));
  }
}

TEST(TwoRoundMatching, DenseGraphsStayCheapPerPlayer) {
  // On a clique, round 0 is capped at c edges and round 1 is nearly empty
  // (almost everyone is matched): per-player bits ~ c*log n, not n.
  const Graph g = graph::complete(64);
  const model::PublicCoins coins(3);
  const auto result = model::run_adaptive(g, TwoRoundMatching{8, 64}, coins);
  EXPECT_TRUE(graph::is_maximal_matching(g, result.output));
  EXPECT_LT(result.comm.max_bits, 64u * 3);  // << 64 * log2(64) raw edges
}

TEST(TwoRoundMatching, HandlesEmptyGraph) {
  const Graph g(10);
  const model::PublicCoins coins(4);
  const auto result = model::run_adaptive(g, TwoRoundMatching{4, 10}, coins);
  EXPECT_TRUE(result.output.empty());
}

TEST(TwoRoundMis, MaximalOnRandomGraphs) {
  util::Rng rng(5);
  int successes = 0;
  constexpr int kReps = 15;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(80, 0.08, rng);
    const model::PublicCoins coins(600 + rep);
    const auto result =
        model::run_adaptive(g, TwoRoundMis{0.35, 200}, coins);
    if (graph::is_maximal_independent_set(g, result.output)) ++successes;
  }
  EXPECT_GE(successes, kReps - 1);
}

TEST(TwoRoundMis, IndependenceNeverViolatedWithoutCapPressure) {
  // With an uncapped round 1 the output must be exactly an MIS: the
  // referee has full knowledge of the undominated subgraph.
  util::Rng rng(6);
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::gnp(50, 0.15, rng);
    const model::PublicCoins coins(700 + rep);
    const auto result =
        model::run_adaptive(g, TwoRoundMis{0.3, 100000}, coins);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.output))
        << "rep " << rep;
  }
}

TEST(TwoRoundMis, MarkIsSharedPublicCoin) {
  const model::PublicCoins coins(7);
  for (graph::Vertex v = 0; v < 50; ++v) {
    EXPECT_EQ(TwoRoundMis::is_marked(coins, v, 0.5),
              TwoRoundMis::is_marked(coins, v, 0.5));
  }
}

TEST(TwoRoundMis, StructuredGraphs) {
  const model::PublicCoins coins(8);
  for (const Graph& g : {graph::path(30), graph::cycle(30),
                         graph::complete(20)}) {
    const auto result =
        model::run_adaptive(g, TwoRoundMis{0.5, 100000}, coins);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.output));
  }
}

TEST(TwoRoundMis, EdgelessGraphTakesAllVertices) {
  const Graph g(12);
  const model::PublicCoins coins(9);
  const auto result = model::run_adaptive(g, TwoRoundMis{0.3, 10}, coins);
  EXPECT_EQ(result.output.size(), 12u);
}

}  // namespace
}  // namespace ds::protocols
