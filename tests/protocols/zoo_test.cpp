#include "protocols/zoo.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/mincut.h"
#include "model/runner.h"

namespace ds::protocols {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(Connectivity, CountsComponents) {
  const Graph g = Graph::from_edges(
      10, std::vector<graph::Edge>{{0, 1}, {1, 2}, {4, 5}, {7, 8}});
  // components: {0,1,2}, {3}, {4,5}, {6}, {7,8}, {9} = 6
  const model::PublicCoins coins(1);
  const auto run = model::run_protocol(g, AgmConnectivity{}, coins);
  EXPECT_EQ(run.output, 6u);
}

TEST(Connectivity, RandomGraphsMatchExact) {
  util::Rng rng(2);
  int correct = 0;
  constexpr int kReps = 15;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(40, 0.05, rng);
    const model::PublicCoins coins(100 + rep);
    const auto run = model::run_protocol(g, AgmConnectivity{}, coins);
    correct += run.output == graph::connected_components(g).count;
  }
  EXPECT_GE(correct, kReps - 2);
}

TEST(KConnectivity, CertificateIsSubgraphAndSparse) {
  util::Rng rng(3);
  const Graph g = graph::gnp(30, 0.4, rng);
  const model::PublicCoins coins(4);
  const std::uint32_t k = 3;
  const auto run =
      model::run_protocol(g, KConnectivityCertificate{k}, coins);
  EXPECT_LE(run.output.size(), static_cast<std::size_t>(k) * 29);
  for (const graph::Edge& e : run.output) {
    EXPECT_TRUE(g.has_edge(e.u, e.v)) << "fabricated certificate edge";
  }
}

TEST(KConnectivity, CertificatePreservesCappedConnectivity) {
  util::Rng rng(5);
  int correct = 0;
  constexpr int kReps = 10;
  const std::uint32_t k = 2;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const Graph g = graph::gnp(20, 0.35, rng);
    const model::PublicCoins coins(200 + rep);
    const auto run =
        model::run_protocol(g, KConnectivityCertificate{k}, coins);
    const Graph cert = Graph::from_edges(g.num_vertices(), run.output);
    const auto lambda_g =
        std::min<std::uint64_t>(graph::global_min_cut(g), k);
    const auto lambda_cert =
        std::min<std::uint64_t>(graph::global_min_cut(cert), k);
    correct += lambda_g == lambda_cert;
  }
  EXPECT_GE(correct, kReps - 2);
}

TEST(KConnectivity, CostScalesLinearlyInK) {
  util::Rng rng(6);
  const Graph g = graph::gnp(24, 0.3, rng);
  const model::PublicCoins coins(7);
  const auto r1 = model::run_protocol(g, KConnectivityCertificate{1}, coins);
  const auto r4 = model::run_protocol(g, KConnectivityCertificate{4}, coins);
  EXPECT_EQ(r4.comm.max_bits, 4 * r1.comm.max_bits);
}

TEST(MstWeight, MatchesKruskalExactly) {
  util::Rng rng(8);
  int correct = 0;
  constexpr int kReps = 10;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const graph::WeightedGraph g =
        graph::random_weighted_gnp(25, 0.25, 5, rng);
    const model::PublicCoins coins(300 + rep);
    const auto run =
        model::run_protocol(g, MstWeight{5}, coins);
    correct += run.output == graph::kruskal_mst(g).total_weight;
  }
  EXPECT_GE(correct, kReps - 2);
}

TEST(MstWeight, UnitWeightsReduceToSpanningForestSize) {
  util::Rng rng(9);
  const graph::WeightedGraph g = graph::random_weighted_gnp(30, 0.2, 1, rng);
  const model::PublicCoins coins(10);
  const auto run = model::run_protocol(g, MstWeight{1}, coins);
  const auto components =
      graph::connected_components(g.topology()).count;
  EXPECT_EQ(run.output, g.num_vertices() - components);
}

TEST(MstWeight, CostScalesLinearlyInWeightClasses) {
  util::Rng rng(11);
  const graph::WeightedGraph g2 = graph::random_weighted_gnp(20, 0.3, 2, rng);
  const graph::WeightedGraph g8 = graph::random_weighted_gnp(20, 0.3, 8, rng);
  const model::PublicCoins coins(12);
  const auto r2 = model::run_protocol(g2, MstWeight{2}, coins);
  const auto r8 = model::run_protocol(g8, MstWeight{8}, coins);
  EXPECT_EQ(r8.comm.max_bits, 4 * r2.comm.max_bits);
}

TEST(MstWeight, DisconnectedForestWeight) {
  const std::vector<graph::WeightedEdge> edges{{0, 1, 3}, {2, 3, 4}};
  const graph::WeightedGraph g = graph::WeightedGraph::from_edges(6, edges);
  const model::PublicCoins coins(13);
  const auto run = model::run_protocol(g, MstWeight{4}, coins);
  EXPECT_EQ(run.output, 7u);
}

}  // namespace
}  // namespace ds::protocols
