#include "graph/graph.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ds::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, FromEdgesBasics) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {3, 1}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // symmetric
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Graph, DeduplicatesParallelEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, NeighborsSorted) {
  const std::vector<Edge> edges{{2, 5}, {2, 1}, {2, 7}, {2, 3}};
  const Graph g = Graph::from_edges(8, edges);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, EdgesCanonical) {
  const std::vector<Edge> in{{3, 0}, {1, 2}, {0, 1}};
  const Graph g = Graph::from_edges(4, in);
  const auto out = g.edges();
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(out[i].u, out[i].v);
    if (i > 0) {
      EXPECT_LT(out[i - 1], out[i]);
    }
  }
}

TEST(Graph, MaxDegree) {
  const Graph g = Graph::from_edges(5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(PairId, RoundTripExhaustive) {
  const Vertex n = 23;
  std::uint64_t expected = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const std::uint64_t id = pair_id(n, u, v);
      EXPECT_EQ(id, expected);
      const Edge back = pair_from_id(n, id);
      EXPECT_EQ(back.u, u);
      EXPECT_EQ(back.v, v);
      ++expected;
    }
  }
  EXPECT_EQ(expected, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(PairId, SymmetricInArguments) {
  EXPECT_EQ(pair_id(10, 3, 7), pair_id(10, 7, 3));
}

TEST(PairId, LargeN) {
  const Vertex n = 100000;
  util::Rng rng(55);
  for (int i = 0; i < 500; ++i) {
    const Vertex u = static_cast<Vertex>(rng.next_below(n));
    Vertex v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) v = (v + 1) % n;
    const Edge back = pair_from_id(n, pair_id(n, u, v));
    const Edge norm = Edge{u, v}.normalized();
    EXPECT_EQ(back, norm);
  }
}

TEST(Graph, RelabeledPreservesStructure) {
  util::Rng rng(77);
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}, {0, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const auto perm = rng.permutation(5);
  const Graph h = g.relabeled(perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (const Edge& e : edges) {
    EXPECT_TRUE(h.has_edge(perm[e.u], perm[e.v]));
  }
}

TEST(Graph, EdgeUnion) {
  const Graph a = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(4, std::vector<Edge>{{1, 2}, {2, 3}});
  const Graph u = Graph::edge_union(a, b);
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(1, 2));
  EXPECT_TRUE(u.has_edge(2, 3));
}

TEST(Graph, InducedSubgraph) {
  const Graph g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const std::vector<Vertex> keep{0, 1, 2};
  const Graph sub = g.induced(keep);
  EXPECT_EQ(sub.num_edges(), 2u);  // (0,1), (1,2)
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_FALSE(sub.has_edge(4, 0));
}

TEST(Graph, EqualityOperator) {
  const std::vector<Edge> edges{{0, 1}, {2, 3}};
  EXPECT_EQ(Graph::from_edges(4, edges), Graph::from_edges(4, edges));
  EXPECT_NE(Graph::from_edges(4, edges),
            Graph::from_edges(4, std::vector<Edge>{{0, 1}}));
}

}  // namespace
}  // namespace ds::graph
