#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/dsu.h"
#include "graph/generators.h"

namespace ds::graph {
namespace {

TEST(Dsu, Basics) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));  // already joined
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_FALSE(dsu.same(0, 2));
  EXPECT_EQ(dsu.num_sets(), 4u);
  dsu.unite(2, 3);
  dsu.unite(0, 3);
  EXPECT_TRUE(dsu.same(1, 2));
  EXPECT_EQ(dsu.num_sets(), 2u);
}

TEST(Components, DisjointPieces) {
  const Graph g = Graph::from_edges(
      7, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[6]);
}

TEST(Components, SingleComponent) {
  EXPECT_EQ(connected_components(cycle(8)).count, 1u);
}

TEST(Components, EmptyGraph) {
  EXPECT_EQ(connected_components(Graph(0)).count, 0u);
  EXPECT_EQ(connected_components(Graph(4)).count, 4u);
}

TEST(SpanningForest, AcceptsTrueForest) {
  const Graph g = cycle(6);
  const std::vector<Edge> forest{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  EXPECT_TRUE(is_spanning_forest(g, forest));
}

TEST(SpanningForest, RejectsCycle) {
  const Graph g = cycle(4);
  const std::vector<Edge> cyclic{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_FALSE(is_spanning_forest(g, cyclic));
}

TEST(SpanningForest, RejectsNonSpanning) {
  const Graph g = cycle(5);
  EXPECT_FALSE(is_spanning_forest(g, std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(SpanningForest, RejectsFabricatedEdge) {
  const Graph g = path(4);
  EXPECT_FALSE(
      is_spanning_forest(g, std::vector<Edge>{{0, 1}, {1, 2}, {0, 3}}));
}

TEST(SpanningForest, MultiComponent) {
  const Graph g =
      Graph::from_edges(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  // Vertex 5 is isolated; forest must span each component exactly.
  EXPECT_TRUE(is_spanning_forest(g, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}}));
  EXPECT_FALSE(is_spanning_forest(g, std::vector<Edge>{{0, 1}, {3, 4}}));
}

TEST(SpanningForest, EmptyGraphEmptyForest) {
  EXPECT_TRUE(is_spanning_forest(Graph(3), {}));
}

}  // namespace
}  // namespace ds::graph
