#include "graph/weighted.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/mincut.h"

namespace ds::graph {
namespace {

TEST(WeightedGraph, Basics) {
  const std::vector<WeightedEdge> edges{{0, 1, 5}, {2, 1, 3}, {0, 2, 7}};
  const WeightedGraph g = WeightedGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.weight(0, 1), 5u);
  EXPECT_EQ(g.weight(1, 0), 5u);
  EXPECT_EQ(g.weight(1, 2), 3u);
  EXPECT_EQ(g.max_weight(), 7u);
  EXPECT_TRUE(g.topology().has_edge(0, 2));
}

TEST(WeightedGraph, DuplicateKeepsLightest) {
  const std::vector<WeightedEdge> edges{{0, 1, 9}, {1, 0, 4}, {0, 1, 6}};
  const WeightedGraph g = WeightedGraph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weight(0, 1), 4u);
}

TEST(WeightedGraph, NeighborWeightsAligned) {
  util::Rng rng(1);
  const WeightedGraph g = random_weighted_gnp(40, 0.2, 10, rng);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.topology().neighbors(v);
    const auto weights = g.neighbor_weights(v);
    ASSERT_EQ(nbrs.size(), weights.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(weights[i], g.weight(v, nbrs[i]));
      EXPECT_GE(weights[i], 1u);
      EXPECT_LE(weights[i], 10u);
    }
  }
}

TEST(WeightedGraph, ThresholdSubgraph) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}};
  const WeightedGraph g = WeightedGraph::from_edges(4, edges);
  EXPECT_EQ(g.threshold_subgraph(0).num_edges(), 0u);
  EXPECT_EQ(g.threshold_subgraph(2).num_edges(), 2u);
  EXPECT_EQ(g.threshold_subgraph(99).num_edges(), 3u);
}

TEST(Kruskal, KnownInstance) {
  // Square with a cheap diagonal.
  const std::vector<WeightedEdge> edges{
      {0, 1, 1}, {1, 2, 4}, {2, 3, 1}, {3, 0, 4}, {0, 2, 2}};
  const WeightedGraph g = WeightedGraph::from_edges(4, edges);
  const MstResult mst = kruskal_mst(g);
  EXPECT_EQ(mst.tree.size(), 3u);
  EXPECT_EQ(mst.total_weight, 4u);  // 1 + 1 + 2
}

TEST(Kruskal, ForestOnDisconnected) {
  const std::vector<WeightedEdge> edges{{0, 1, 2}, {2, 3, 5}};
  const WeightedGraph g = WeightedGraph::from_edges(5, edges);
  const MstResult mst = kruskal_mst(g);
  EXPECT_EQ(mst.tree.size(), 2u);
  EXPECT_EQ(mst.total_weight, 7u);
}

TEST(Kruskal, ComponentCountingIdentity) {
  // The identity MstWeight sketches rely on: w(MSF) = sum_i (c_i - c_W).
  util::Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const WeightedGraph g = random_weighted_gnp(30, 0.15, 8, rng);
    const std::uint64_t exact = kruskal_mst(g).total_weight;
    const std::uint32_t big_w = 8;
    const std::uint32_t c_w =
        connected_components(g.threshold_subgraph(big_w)).count;
    std::uint64_t via_components = 0;
    for (std::uint32_t i = 0; i < big_w; ++i) {
      const std::uint32_t c_i =
          i == 0 ? g.num_vertices()
                 : connected_components(g.threshold_subgraph(i)).count;
      via_components += c_i - c_w;
    }
    EXPECT_EQ(via_components, exact) << "rep " << rep;
  }
}

TEST(MinCut, SmallKnownGraphs) {
  EXPECT_EQ(global_min_cut(Graph(1)), 0u);
  EXPECT_EQ(global_min_cut(path(5)), 1u);
  EXPECT_EQ(global_min_cut(cycle(6)), 2u);
  EXPECT_EQ(global_min_cut(complete(5)), 4u);
  // Disconnected: cut 0.
  EXPECT_EQ(
      global_min_cut(Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}})),
      0u);
}

TEST(MinCut, BarbellGraph) {
  // Two K5's joined by one edge: min cut 1.
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 5; ++u)
    for (Vertex v = u + 1; v < 5; ++v) edges.push_back({u, v});
  for (Vertex u = 5; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) edges.push_back({u, v});
  edges.push_back({4, 5});
  EXPECT_EQ(global_min_cut(Graph::from_edges(10, edges)), 1u);
}

TEST(MinCut, MatchesCertificateBound) {
  util::Rng rng(3);
  for (int rep = 0; rep < 8; ++rep) {
    const Graph g = gnp(25, 0.3, rng);
    const std::uint64_t lambda = global_min_cut(g);
    for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
      EXPECT_EQ(edge_connectivity_at_most(g, k),
                std::min<std::uint64_t>(lambda, k))
          << "rep " << rep << " k " << k;
    }
  }
}

}  // namespace
}  // namespace ds::graph
