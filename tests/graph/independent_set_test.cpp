#include "graph/independent_set.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ds::graph {
namespace {

TEST(IndependentSet, Basics) {
  const Graph g = path(4);  // 0-1-2-3
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{}));
  EXPECT_TRUE(is_independent_set(g, std::vector<Vertex>{0, 2}));
  EXPECT_FALSE(is_independent_set(g, std::vector<Vertex>{0, 1}));
  EXPECT_FALSE(is_independent_set(g, std::vector<Vertex>{0, 0}));  // dup
  EXPECT_FALSE(is_independent_set(g, std::vector<Vertex>{9}));     // range
}

TEST(IndependentSet, Maximality) {
  const Graph g = path(4);
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<Vertex>{0, 2}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<Vertex>{1, 3}));
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<Vertex>{0}));
  // {0,3} is independent but 1 and 2... 1 adjacent to 0? yes (path 0-1).
  // 2 adjacent to 3: yes. So {0,3} is maximal.
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<Vertex>{0, 3}));
}

TEST(IndependentSet, EmptySetMaximalOnlyOnEmptyVertexSet) {
  EXPECT_TRUE(is_maximal_independent_set(Graph(0), {}));
  EXPECT_FALSE(is_maximal_independent_set(Graph(3), {}));  // isolated verts
}

TEST(IndependentSet, IsolatedVerticesMustBeIncluded) {
  const Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}});
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<Vertex>{0}));
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<Vertex>{0, 2, 3}));
}

TEST(IndependentSet, GreedyMaximal) {
  util::Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    const Graph g = gnp(40, 0.15, rng);
    EXPECT_TRUE(is_maximal_independent_set(g, greedy_mis(g)));
    EXPECT_TRUE(is_maximal_independent_set(g, greedy_mis_random(g, rng)));
  }
}

TEST(IndependentSet, GreedyOnComplete) {
  EXPECT_EQ(greedy_mis(complete(7)).size(), 1u);
}

TEST(IndependentSet, GreedyOnEmptyGraphTakesEverything) {
  EXPECT_EQ(greedy_mis(Graph(9)).size(), 9u);
}

TEST(IndependentSet, LubyProducesMis) {
  util::Rng rng(2);
  for (int rep = 0; rep < 15; ++rep) {
    const Graph g = gnp(50, 0.1, rng);
    EXPECT_TRUE(is_maximal_independent_set(g, luby_mis(g, rng)));
  }
}

TEST(IndependentSet, LubyOnStructuredGraphs) {
  util::Rng rng(3);
  EXPECT_TRUE(is_maximal_independent_set(path(10), luby_mis(path(10), rng)));
  EXPECT_TRUE(is_maximal_independent_set(cycle(9), luby_mis(cycle(9), rng)));
  EXPECT_EQ(luby_mis(complete(8), rng).size(), 1u);
  EXPECT_EQ(luby_mis(Graph(5), rng).size(), 5u);
}

TEST(IndependentSet, GreedyRespectsOrder) {
  const Graph g = path(3);  // 0-1-2
  const std::vector<Vertex> order{1, 0, 2};
  const VertexSet s = greedy_mis(g, order);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], 1u);
}

}  // namespace
}  // namespace ds::graph
