#include "graph/hopcroft_karp.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "lowerbound/dmm.h"
#include "rs/rs_graph.h"

namespace ds::graph {
namespace {

TEST(Bipartition, DetectsBipartiteness) {
  EXPECT_TRUE(bipartition(path(6)).has_value());
  EXPECT_TRUE(bipartition(cycle(8)).has_value());
  EXPECT_FALSE(bipartition(cycle(7)).has_value());
  EXPECT_FALSE(bipartition(complete(3)).has_value());
  EXPECT_TRUE(bipartition(Graph(5)).has_value());
}

TEST(Bipartition, SidesAreConsistent) {
  util::Rng rng(1);
  const Graph g = random_bipartite(15, 20, 0.2, rng);
  const auto side = bipartition(g);
  ASSERT_TRUE(side.has_value());
  for (const Edge& e : g.edges()) EXPECT_NE((*side)[e.u], (*side)[e.v]);
}

TEST(HopcroftKarp, KnownValues) {
  // Path 0-1-2-3: maximum matching 2.
  EXPECT_EQ(maximum_bipartite_matching(path(4)).size(), 2u);
  // Even cycle: perfect matching.
  EXPECT_EQ(maximum_bipartite_matching(cycle(10)).size(), 5u);
  // Star: 1.
  std::vector<Edge> star;
  for (Vertex v = 1; v < 9; ++v) star.push_back({0, v});
  EXPECT_EQ(maximum_bipartite_matching(Graph::from_edges(9, star)).size(),
            1u);
}

TEST(HopcroftKarp, OutputIsValidMatching) {
  util::Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = random_bipartite(20, 25, 0.15, rng);
    const Matching m = maximum_bipartite_matching(g);
    EXPECT_TRUE(is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal_matching(g, m));  // maximum => maximal
  }
}

TEST(HopcroftKarp, DominatesGreedyAndWithinFactorTwo) {
  util::Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = random_bipartite(25, 25, 0.1, rng);
    const std::size_t greedy = greedy_matching(g).size();
    const std::size_t maximum = maximum_bipartite_matching(g).size();
    EXPECT_GE(maximum, greedy);
    EXPECT_LE(maximum, 2 * greedy);  // any maximal is a 2-approximation
  }
}

TEST(HopcroftKarp, AugmentingPathCase) {
  // Greedy can pick the middle edge of a path of 3 edges; maximum is 2.
  // 0-1, 1-2, 2-3 with greedy order starting at (1,2).
  const Graph g = path(4);
  const std::vector<Edge> bad_order{{1, 2}, {0, 1}, {2, 3}};
  EXPECT_EQ(greedy_matching(g, bad_order).size(), 1u);
  EXPECT_EQ(maximum_bipartite_matching(g).size(), 2u);
}

TEST(HopcroftKarp, DmmInstancesAreBipartite) {
  // The bipartite RS construction keeps D_MM bipartite, so the maximum
  // matching baseline applies to the lower-bound instances directly.
  const rs::RsGraph base = rs::rs_graph(8);
  util::Rng rng(4);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, base.t(), rng);
  ASSERT_TRUE(bipartition(inst.g).has_value());
  const Matching maximum = maximum_bipartite_matching(inst.g);
  EXPECT_TRUE(is_valid_matching(inst.g, maximum));
  // Maximum covers at least the forced surviving special edges' count.
  std::size_t surviving = 0;
  for (const auto& mi : inst.special_surviving) surviving += mi.size();
  EXPECT_GE(maximum.size(), surviving);
}

}  // namespace
}  // namespace ds::graph
