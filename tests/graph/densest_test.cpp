#include "graph/densest.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ds::graph {
namespace {

TEST(Densest, CliqueIsItsOwnDensest) {
  const Graph g = complete(8);
  const DensestResult r = densest_subgraph_peel(g);
  EXPECT_EQ(r.subset.size(), 8u);
  EXPECT_DOUBLE_EQ(r.density, 28.0 / 8.0);
}

TEST(Densest, PlantedCliqueFound) {
  // K6 planted in a sparse background: peeling must isolate it.
  util::Rng rng(1);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v) edges.push_back({u, v});
  for (Vertex v = 6; v < 40; ++v) {
    edges.push_back({v, static_cast<Vertex>(rng.next_below(v))});
  }
  const Graph g = Graph::from_edges(40, edges);
  const DensestResult r = densest_subgraph_peel(g);
  EXPECT_GE(r.density, 2.0);
  // All six clique vertices survive in the chosen subset.
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_TRUE(std::binary_search(r.subset.begin(), r.subset.end(), v));
  }
}

TEST(Densest, PeelIsTwoApproxAgainstExhaustive) {
  util::Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = gnp(14, 0.3, rng);
    const DensestResult exact = densest_subgraph_exact_tiny(g);
    const DensestResult peeled = densest_subgraph_peel(g);
    EXPECT_LE(peeled.density, exact.density + 1e-9);
    EXPECT_GE(peeled.density, exact.density / 2.0 - 1e-9) << "rep " << rep;
  }
}

TEST(Densest, EmptyAndEdgeless) {
  EXPECT_EQ(densest_subgraph_peel(Graph(0)).subset.size(), 0u);
  const DensestResult r = densest_subgraph_peel(Graph(5));
  EXPECT_DOUBLE_EQ(r.density, 0.0);
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracy(Graph(5)), 0u);
  EXPECT_EQ(degeneracy(path(10)), 1u);   // forest
  EXPECT_EQ(degeneracy(cycle(10)), 2u);
  EXPECT_EQ(degeneracy(complete(7)), 6u);
}

TEST(Degeneracy, StarIsOne) {
  std::vector<Edge> edges;
  for (Vertex v = 1; v < 20; ++v) edges.push_back({0, v});
  EXPECT_EQ(degeneracy(Graph::from_edges(20, edges)), 1u);
}

TEST(Degeneracy, PlantedCliqueDominates) {
  util::Rng rng(3);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 7; ++u)
    for (Vertex v = u + 1; v < 7; ++v) edges.push_back({u, v});
  for (Vertex v = 7; v < 50; ++v) {
    edges.push_back({v, static_cast<Vertex>(rng.next_below(v))});
  }
  EXPECT_EQ(degeneracy(Graph::from_edges(50, edges)), 6u);
}

TEST(Degeneracy, OrderingBoundHolds) {
  // Every vertex has at most `degeneracy` neighbors later in the order.
  util::Rng rng(4);
  const Graph g = gnp(40, 0.2, rng);
  const std::uint32_t d = degeneracy(g);
  const auto order = degeneracy_order(g);
  std::vector<std::uint32_t> position(g.num_vertices());
  for (std::uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t later = 0;
    for (Vertex w : g.neighbors(v)) later += position[w] > position[v];
    EXPECT_LE(later, d);
  }
}

TEST(Degeneracy, MonotoneUnderEdgeRemoval) {
  util::Rng rng(5);
  const Graph g = gnp(30, 0.3, rng);
  const Graph sub = subsample_edges(g, 0.5, rng);
  EXPECT_LE(degeneracy(sub), degeneracy(g));
}

}  // namespace
}  // namespace ds::graph
