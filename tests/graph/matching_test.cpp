#include "graph/matching.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ds::graph {
namespace {

TEST(Matching, IsMatchingBasics) {
  EXPECT_TRUE(is_matching({}, 5));
  EXPECT_TRUE(is_matching(std::vector<Edge>{{0, 1}, {2, 3}}, 4));
  EXPECT_FALSE(is_matching(std::vector<Edge>{{0, 1}, {1, 2}}, 3));  // shares 1
  EXPECT_FALSE(is_matching(std::vector<Edge>{{0, 0}}, 2));          // loop
  EXPECT_FALSE(is_matching(std::vector<Edge>{{0, 9}}, 5));          // range
}

TEST(Matching, ValidRequiresRealEdges) {
  const Graph g = path(4);  // 0-1-2-3
  EXPECT_TRUE(is_valid_matching(g, std::vector<Edge>{{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_valid_matching(g, std::vector<Edge>{{0, 2}}));  // non-edge
}

TEST(Matching, MaximalityOnPath) {
  const Graph g = path(4);
  // {1,2} alone is maximal (0 and 3 have no partner left).
  EXPECT_TRUE(is_maximal_matching(g, std::vector<Edge>{{1, 2}}));
  // {0,1} alone is not: (2,3) is free.
  EXPECT_FALSE(is_maximal_matching(g, std::vector<Edge>{{0, 1}}));
  EXPECT_TRUE(is_maximal_matching(g, std::vector<Edge>{{0, 1}, {2, 3}}));
}

TEST(Matching, EmptyMatchingMaximalOnlyOnEmptyGraph) {
  EXPECT_TRUE(is_maximal_matching(Graph(4), {}));
  EXPECT_FALSE(is_maximal_matching(path(3), {}));
}

TEST(Matching, GreedyProducesMaximal) {
  util::Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    const Graph g = gnp(40, 0.15, rng);
    const Matching m = greedy_matching(g);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Matching, GreedyRandomProducesMaximal) {
  util::Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const Graph g = gnp(40, 0.1, rng);
    const Matching m = greedy_matching_random(g, rng);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Matching, GreedyOnEmptyAndComplete) {
  EXPECT_TRUE(greedy_matching(Graph(6)).empty());
  const Matching m = greedy_matching(complete(6));
  EXPECT_EQ(m.size(), 3u);  // perfect matching on K6
}

TEST(Matching, PreferringTouchesPreferredFirst) {
  // Star center 0 with leaves 1..4 plus the edge (3,4): preferring {0}
  // must match 0; preferring {3,4} must pick (3,4).
  const Graph g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {3, 4}});
  const std::vector<Vertex> prefer_center{0};
  Matching m = greedy_matching_preferring(g, prefer_center);
  EXPECT_TRUE(is_maximal_matching(g, m));
  bool center_matched = false;
  for (const Edge& e : m) center_matched |= (e.u == 0 || e.v == 0);
  EXPECT_TRUE(center_matched);

  const std::vector<Vertex> prefer_leaves{3, 4};
  m = greedy_matching_preferring(g, prefer_leaves);
  EXPECT_TRUE(is_maximal_matching(g, m));
  bool has_34 = false;
  for (const Edge& e : m) has_34 |= (e.normalized() == Edge{3, 4});
  EXPECT_TRUE(has_34);
}

TEST(Matching, PreferringStillMaximal) {
  util::Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const Graph g = gnp(30, 0.2, rng);
    std::vector<Vertex> preferred;
    for (Vertex v = 0; v < 10; ++v) preferred.push_back(v);
    EXPECT_TRUE(
        is_maximal_matching(g, greedy_matching_preferring(g, preferred)));
  }
}

TEST(Matching, MatchedSet) {
  const auto used = matched_set(std::vector<Edge>{{1, 3}}, 5);
  EXPECT_FALSE(used[0]);
  EXPECT_TRUE(used[1]);
  EXPECT_FALSE(used[2]);
  EXPECT_TRUE(used[3]);
}

}  // namespace
}  // namespace ds::graph
