#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/connectivity.h"

namespace ds::graph {
namespace {

TEST(Generators, GnpExtremes) {
  util::Rng rng(1);
  const Graph empty = gnp(20, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  const Graph full = gnp(20, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 20u * 19 / 2);
}

TEST(Generators, GnpDensity) {
  util::Rng rng(2);
  const Vertex n = 200;
  const double p = 0.1;
  double total = 0;
  for (int rep = 0; rep < 10; ++rep) {
    total += static_cast<double>(gnp(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / 10.0, expected, 0.06 * expected);
}

TEST(Generators, RandomBipartiteRespectsParts) {
  util::Rng rng(3);
  const Graph g = random_bipartite(10, 15, 0.5, rng);
  EXPECT_EQ(g.num_vertices(), 25u);
  for (const Edge& e : g.edges()) {
    const bool u_left = e.u < 10;
    const bool v_left = e.v < 10;
    EXPECT_NE(u_left, v_left) << "edge inside a part";
  }
}

TEST(Generators, PathAndCycle) {
  const Graph p = path(5);
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(2), 2u);
  const Graph c = cycle(5);
  EXPECT_EQ(c.num_edges(), 5u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
}

TEST(Generators, Complete) {
  const Graph k5 = complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);
}

TEST(Generators, RandomMatchingUnionDegreeBound) {
  util::Rng rng(4);
  const Graph g = random_matching_union(100, 5, rng);
  EXPECT_LE(g.max_degree(), 5u);
  // Each matching contributes ~n/2 edges, minus collisions.
  EXPECT_GT(g.num_edges(), 150u);
}

TEST(Generators, TwoClustersWithBridge) {
  util::Rng rng(5);
  const auto [g, bridge] = two_clusters_with_bridge(40, 0.4, rng);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_TRUE(g.has_edge(bridge.u, bridge.v));
  EXPECT_LT(bridge.u, 20u);
  EXPECT_GE(bridge.v, 20u);
  // Dense halves are connected w.h.p.; the whole graph then has exactly
  // one component through the bridge.
  EXPECT_EQ(connected_components(g).count, 1u);
  // Removing the bridge must disconnect the halves.
  std::vector<Edge> without;
  for (const Edge& e : g.edges()) {
    if (e.normalized() != bridge.normalized()) without.push_back(e);
  }
  const Graph cut = Graph::from_edges(40, without);
  EXPECT_EQ(connected_components(cut).count, 2u);
}

TEST(Generators, SubsampleEdgesExtremes) {
  util::Rng rng(6);
  const Graph g = complete(12);
  EXPECT_EQ(subsample_edges(g, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(subsample_edges(g, 1.0, rng).num_edges(), g.num_edges());
}

TEST(Generators, SubsampleEdgesRate) {
  util::Rng rng(7);
  const Graph g = complete(60);  // 1770 edges
  double total = 0;
  for (int rep = 0; rep < 20; ++rep) {
    total += static_cast<double>(subsample_edges(g, 0.5, rng).num_edges());
  }
  EXPECT_NEAR(total / 20.0, static_cast<double>(g.num_edges()) / 2.0, 40.0);
}

TEST(Generators, SubsampleIsSubset) {
  util::Rng rng(8);
  const Graph g = gnp(50, 0.2, rng);
  const Graph sub = subsample_edges(g, 0.5, rng);
  for (const Edge& e : sub.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
}

TEST(Generators, RmatEdgesAreValidAndDeterministic) {
  const RmatParams params;
  std::vector<Edge> first;
  util::Rng rng_a(9);
  rmat_edges(100, 500, params, rng_a, [&](Edge e) { first.push_back(e); });
  ASSERT_EQ(first.size(), 500u);
  for (const Edge& e : first) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    EXPECT_NE(e.u, e.v);
  }
  std::vector<Edge> second;
  util::Rng rng_b(9);
  rmat_edges(100, 500, params, rng_b, [&](Edge e) { second.push_back(e); });
  EXPECT_EQ(first, second);
}

TEST(Generators, RmatMaterializedMatchesCallbackDraws) {
  const RmatParams params;
  util::Rng rng_a(10);
  const Graph g = rmat(64, 300, params, rng_a);
  std::vector<Edge> drawn;
  util::Rng rng_b(10);
  rmat_edges(64, 300, params, rng_b, [&](Edge e) { drawn.push_back(e); });
  EXPECT_EQ(g, Graph::from_edges(64, drawn));
}

TEST(Generators, RmatIsSkewedTowardLowIds) {
  // With the default quadrant weights most edge mass concentrates on
  // low vertex ids: P(top two bits zero) = (a+b)^2 ~ 0.58 per endpoint.
  // Count raw draws (materializing dedups the dense corner and flattens
  // the skew).
  util::Rng rng(11);
  std::uint64_t low = 0;
  std::uint64_t total = 0;
  rmat_edges(256, 4000, RmatParams{}, rng, [&](Edge e) {
    total += 2;
    if (e.u < 64) ++low;
    if (e.v < 64) ++low;
  });
  EXPECT_GT(low * 2, total);  // >50% of mass in the lowest 25% of ids
}

TEST(Generators, PowerLawWeightsSampleSkew) {
  const PowerLawWeights weights(1000, 2.5);
  EXPECT_EQ(weights.num_vertices(), 1000u);
  util::Rng rng(12);
  std::uint64_t low = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (weights.sample(rng) < 100) ++low;
  }
  // The head of a power law holds far more than its 10% uniform share.
  EXPECT_GT(low, kDraws / 4);
}

TEST(Generators, ChungLuEdgesValidAndDeterministic) {
  const PowerLawWeights weights(500, 2.5);
  std::vector<Edge> first;
  util::Rng rng_a(13);
  chung_lu_edges(weights, 800, rng_a, [&](Edge e) { first.push_back(e); });
  ASSERT_EQ(first.size(), 800u);
  for (const Edge& e : first) {
    EXPECT_LT(e.u, 500u);
    EXPECT_LT(e.v, 500u);
    EXPECT_NE(e.u, e.v);
  }
  std::vector<Edge> second;
  util::Rng rng_b(13);
  chung_lu_edges(weights, 800, rng_b, [&](Edge e) { second.push_back(e); });
  EXPECT_EQ(first, second);
}

TEST(Generators, ChungLuMaterializedMatchesCallbackDraws) {
  util::Rng rng_a(14);
  const Graph g = chung_lu(200, 2.5, 600, rng_a);
  const PowerLawWeights weights(200, 2.5);
  std::vector<Edge> drawn;
  util::Rng rng_b(14);
  chung_lu_edges(weights, 600, rng_b, [&](Edge e) { drawn.push_back(e); });
  EXPECT_EQ(g, Graph::from_edges(200, drawn));
}

TEST(Generators, RmatHandlesNonPowerOfTwoN) {
  util::Rng rng(15);
  std::size_t count = 0;
  rmat_edges(100, 200, RmatParams{}, rng, [&](Edge e) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
    ++count;
  });
  EXPECT_EQ(count, 200u);
}

}  // namespace
}  // namespace ds::graph
