// Differential fuzzing of the word-at-a-time bitio fast paths (ISSUE 9
// satellite): a test-local bit-at-a-time reference implementation runs
// the same random put/get schedule as the production BitWriter/BitReader,
// and the two must agree on every word, the exact bit count, and every
// decoded value.  The CI asan/ubsan job runs this suite, so any
// out-of-bounds word access or shift UB in the fast paths trips there.
#include "util/bitio.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ds::util {
namespace {

/// Reference writer: one bool per bit.  No fast paths, no shared code
/// with the production BitWriter beyond the encoding definitions.
class RefWriter {
 public:
  void put_bit(bool b) { bits_.push_back(b); }

  void put_bits(std::uint64_t value, unsigned width) {
    for (unsigned i = 0; i < width; ++i) put_bit((value >> i) & 1);
  }

  void put_zeros(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) put_bit(false);
  }

  void put_words(std::span<const std::uint64_t> src, std::size_t nbits) {
    for (std::size_t i = 0; i < nbits; ++i) {
      put_bit((src[i / 64] >> (i % 64)) & 1);
    }
  }

  void put_gamma(std::uint64_t value) {
    unsigned len = 0;
    while ((value >> len) > 1) ++len;  // floor(log2 value)
    for (unsigned i = 0; i < len; ++i) put_bit(false);
    put_bit(true);
    put_bits(value & ~(std::uint64_t{1} << len), len);
  }

  void put_delta(std::uint64_t value) {
    unsigned len = 0;
    while ((value >> len) > 1) ++len;
    put_gamma(len + 1);
    put_bits(value & ~(std::uint64_t{1} << len), len);
  }

  void put_u32_span(std::span<const std::uint32_t> values, unsigned width) {
    put_gamma(values.size() + 1);
    for (std::uint32_t v : values) put_bits(v, width);
  }

  [[nodiscard]] std::size_t bit_count() const { return bits_.size(); }

  /// Packed LSB-first words, exactly how BitWriter::words() lays them out.
  [[nodiscard]] std::vector<std::uint64_t> words() const {
    std::vector<std::uint64_t> out((bits_.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]) out[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    return out;
  }

 private:
  std::vector<bool> bits_;
};

// One schedule step; the arrays below drive writer and reference in
// lockstep so both see identical operations and operands.
struct Op {
  enum Kind { kBit, kBits, kZeros, kWords, kGamma, kDelta, kU32Span } kind;
  std::uint64_t value = 0;
  unsigned width = 0;
  std::size_t count = 0;
  std::vector<std::uint64_t> words;
  std::vector<std::uint32_t> u32s;
};

std::vector<Op> random_schedule(Rng& rng, std::size_t steps) {
  std::vector<Op> ops;
  ops.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng.next_below(7));
    switch (op.kind) {
      case Op::kBit:
        op.value = rng.next_below(2);
        break;
      case Op::kBits:
        op.width = static_cast<unsigned>(rng.next_below(65));  // 0..64
        op.value = rng.next();
        break;
      case Op::kZeros:
        op.count = rng.next_below(130);
        break;
      case Op::kWords: {
        const std::size_t nwords = 1 + rng.next_below(4);
        for (std::size_t i = 0; i < nwords; ++i) op.words.push_back(rng.next());
        op.count = rng.next_below(64 * nwords + 1);
        break;
      }
      case Op::kGamma:
      case Op::kDelta:
        op.value = 1 + rng.next_below(1u << 20);
        break;
      case Op::kU32Span: {
        op.width = static_cast<unsigned>(rng.next_below(33));  // 0..32
        const std::size_t len = rng.next_below(9);
        const std::uint64_t limit =
            op.width == 0 ? 1 : (std::uint64_t{1} << op.width);
        for (std::size_t i = 0; i < len; ++i) {
          op.u32s.push_back(static_cast<std::uint32_t>(rng.next_below(limit)));
        }
        break;
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

template <typename Writer>
void apply(Writer& w, const Op& op) {
  switch (op.kind) {
    case Op::kBit:
      w.put_bit(op.value != 0);
      break;
    case Op::kBits:
      w.put_bits(op.value, op.width);
      break;
    case Op::kZeros:
      w.put_zeros(op.count);
      break;
    case Op::kWords:
      w.put_words(op.words, op.count);
      break;
    case Op::kGamma:
      w.put_gamma(op.value);
      break;
    case Op::kDelta:
      w.put_delta(op.value);
      break;
    case Op::kU32Span:
      w.put_u32_span(op.u32s, op.width);
      break;
  }
}

TEST(BitIoDifferential, RandomSchedulesMatchReference) {
  Rng seed_rng(0xD1FFD1FF);
  for (int round = 0; round < 50; ++round) {
    Rng rng(seed_rng.next());
    const std::vector<Op> ops = random_schedule(rng, 1 + rng.next_below(60));

    BitWriter prod;
    RefWriter ref;
    for (const Op& op : ops) {
      apply(prod, op);
      apply(ref, op);
      // The writer invariant must hold after EVERY operation, not just at
      // the end: exactly ceil(bit_count/64) backing words.
      ASSERT_EQ(prod.words().size(), (prod.bit_count() + 63) / 64)
          << "round " << round;
    }
    ASSERT_EQ(prod.bit_count(), ref.bit_count()) << "round " << round;
    ASSERT_EQ(prod.words(), ref.words()) << "round " << round;

    // Decode side: the production reader must hand back each operation's
    // payload exactly.
    BitString bs(prod);
    BitReader r(bs);
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kBit:
          ASSERT_EQ(r.get_bit(), op.value != 0);
          break;
        case Op::kBits: {
          const std::uint64_t expect =
              op.width == 0
                  ? 0
                  : op.value & (~std::uint64_t{0} >> (64 - op.width));
          ASSERT_EQ(r.get_bits(op.width), expect) << "round " << round;
          break;
        }
        case Op::kZeros:
          for (std::size_t i = 0; i < op.count; ++i) ASSERT_FALSE(r.get_bit());
          break;
        case Op::kWords: {
          std::vector<std::uint64_t> out(op.words.size(), ~std::uint64_t{0});
          r.get_words(out, op.count);
          for (std::size_t i = 0; i < op.count; ++i) {
            ASSERT_EQ((out[i / 64] >> (i % 64)) & 1,
                      (op.words[i / 64] >> (i % 64)) & 1)
                << "round " << round << " bit " << i;
          }
          break;
        }
        case Op::kGamma:
          ASSERT_EQ(r.get_gamma(), op.value) << "round " << round;
          break;
        case Op::kDelta:
          ASSERT_EQ(r.get_delta(), op.value) << "round " << round;
          break;
        case Op::kU32Span: {
          const std::vector<std::uint32_t> got = r.get_u32_span(op.width);
          ASSERT_EQ(got, op.u32s) << "round " << round;
          break;
        }
      }
    }
    ASSERT_EQ(r.bits_remaining(), 0u) << "round " << round;
  }
}

TEST(BitIoDifferential, U32SpanMatchesElementwisePuts) {
  // put_u32_span's word-at-a-time accumulator vs one put_bits per value.
  Rng rng(0x5AA5);
  for (unsigned width = 0; width <= 32; ++width) {
    std::vector<std::uint32_t> values;
    const std::uint64_t limit = width == 0 ? 1 : (std::uint64_t{1} << width);
    for (int i = 0; i < 37; ++i) {
      values.push_back(static_cast<std::uint32_t>(rng.next_below(limit)));
    }
    BitWriter batched;
    batched.put_u32_span(values, width);
    BitWriter scalar;
    scalar.put_gamma(values.size() + 1);
    for (std::uint32_t v : values) scalar.put_bits(v, width);
    ASSERT_EQ(batched.bit_count(), scalar.bit_count()) << "width " << width;
    ASSERT_EQ(batched.words(), scalar.words()) << "width " << width;
  }
}

}  // namespace
}  // namespace ds::util
