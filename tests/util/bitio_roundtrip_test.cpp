// Property-style round-trip coverage for util::BitWriter / BitReader
// (ISSUE 3 satellite): the wire codec serializes payloads byte-by-byte
// and reassembles them through put_bits, so the non-byte-aligned and
// word-boundary-straddling paths must be exact — every written field must
// read back identically, at every alignment, with bit_count charged
// exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bitio.h"
#include "util/rng.h"

namespace ds {
namespace {

// One randomly generated operation against the bit stream.
struct Op {
  enum class Kind : std::uint8_t { kBits, kGamma, kDelta, kSpan } kind;
  std::uint64_t value = 0;
  unsigned width = 0;                // kBits only
  std::vector<std::uint32_t> span;   // kSpan only
  unsigned span_width = 0;           // kSpan only
};

Op random_op(util::Rng& rng) {
  Op op;
  switch (rng.next_below(4)) {
    case 0: {
      op.kind = Op::Kind::kBits;
      // Widths 0..64 inclusive, deliberately hitting 1, 63, 64.
      op.width = static_cast<unsigned>(rng.next_below(65));
      op.value = rng.next();
      if (op.width < 64) op.value &= (std::uint64_t{1} << op.width) - 1;
      break;
    }
    case 1:
      op.kind = Op::Kind::kGamma;
      op.value = 1 + rng.next_below(1u << 20);
      break;
    case 2:
      op.kind = Op::Kind::kDelta;
      // Bias toward huge values so length fields straddle words.
      op.value = 1 + (rng.next() >> (rng.next_below(60)));
      break;
    default: {
      op.kind = Op::Kind::kSpan;
      op.span_width = static_cast<unsigned>(1 + rng.next_below(32));
      const std::size_t len = rng.next_below(9);
      for (std::size_t i = 0; i < len; ++i) {
        std::uint64_t v = rng.next();
        if (op.span_width < 64) v &= (std::uint64_t{1} << op.span_width) - 1;
        op.span.push_back(static_cast<std::uint32_t>(v));
      }
      break;
    }
  }
  return op;
}

std::size_t op_bits(const Op& op) {
  util::BitWriter w;
  switch (op.kind) {
    case Op::Kind::kBits: w.put_bits(op.value, op.width); break;
    case Op::Kind::kGamma: w.put_gamma(op.value); break;
    case Op::Kind::kDelta: w.put_delta(op.value); break;
    case Op::Kind::kSpan: w.put_u32_span(op.span, op.span_width); break;
  }
  return w.bit_count();
}

TEST(BitIoRoundTrip, RandomOperationSequencesAreExact) {
  util::Rng rng(0xB17C0DE);
  for (int trial = 0; trial < 200; ++trial) {
    // A misalignment prefix of 0..66 single bits guarantees every op in
    // the sequence starts at an arbitrary bit offset, including offsets
    // straddling the 64-bit word boundary.
    const std::size_t prefix = rng.next_below(67);
    std::vector<bool> prefix_bits;
    for (std::size_t i = 0; i < prefix; ++i) {
      prefix_bits.push_back(rng.next_below(2) == 1);
    }
    std::vector<Op> ops;
    const std::size_t num_ops = 1 + rng.next_below(24);
    for (std::size_t i = 0; i < num_ops; ++i) ops.push_back(random_op(rng));

    util::BitWriter writer;
    std::size_t expected_bits = 0;
    for (const bool b : prefix_bits) writer.put_bit(b);
    expected_bits += prefix_bits.size();
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Kind::kBits: writer.put_bits(op.value, op.width); break;
        case Op::Kind::kGamma: writer.put_gamma(op.value); break;
        case Op::Kind::kDelta: writer.put_delta(op.value); break;
        case Op::Kind::kSpan:
          writer.put_u32_span(op.span, op.span_width);
          break;
      }
      expected_bits += op_bits(op);
    }
    // Exact charging: the total is the sum of the parts.
    ASSERT_EQ(writer.bit_count(), expected_bits);

    const util::BitString message(writer);
    util::BitReader reader(message);
    for (const bool b : prefix_bits) ASSERT_EQ(reader.get_bit(), b);
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Kind::kBits:
          ASSERT_EQ(reader.get_bits(op.width), op.value);
          break;
        case Op::Kind::kGamma:
          ASSERT_EQ(reader.get_gamma(), op.value);
          break;
        case Op::Kind::kDelta:
          ASSERT_EQ(reader.get_delta(), op.value);
          break;
        case Op::Kind::kSpan: {
          const std::vector<std::uint32_t> got =
              reader.get_u32_span(op.span_width);
          ASSERT_EQ(got, op.span);
          break;
        }
      }
    }
    ASSERT_EQ(reader.bits_remaining(), 0u);
  }
}

TEST(BitIoRoundTrip, WordBoundaryStraddles) {
  // Place a 64-bit field at every offset in [1, 64): each one straddles
  // the word boundary a different way.
  for (unsigned offset = 1; offset < 64; ++offset) {
    util::BitWriter w;
    w.put_bits(0x5A5A5A5A5A5A5A5Au, offset);
    const std::uint64_t value = 0x0123456789ABCDEFu;
    w.put_bits(value, 64);
    w.put_bits(1, 1);
    ASSERT_EQ(w.bit_count(), offset + 65u);

    const util::BitString s(w);
    util::BitReader r(s);
    (void)r.get_bits(offset);
    ASSERT_EQ(r.get_bits(64), value) << "offset " << offset;
    ASSERT_EQ(r.get_bit(), true);
  }
}

TEST(BitIoRoundTrip, NonByteAlignedPayloadLengths) {
  // Every total length mod 8 in [0, 8); the wire codec zero-pads the
  // final byte, so the writer's trailing partial word must be clean.
  for (std::size_t bits = 1; bits <= 130; ++bits) {
    util::BitWriter w;
    util::Rng rng(bits);
    std::vector<bool> expect;
    for (std::size_t i = 0; i < bits; ++i) {
      const bool b = rng.next_below(2) == 1;
      expect.push_back(b);
      w.put_bit(b);
    }
    ASSERT_EQ(w.bit_count(), bits);
    const util::BitString s(w);
    // No hidden payload beyond bit_count: unused high bits of the final
    // word are zero (the frame codec relies on this for padding checks).
    if (bits % 64 != 0) {
      const std::uint64_t last = s.words().back();
      ASSERT_EQ(last >> (bits % 64), 0u) << bits;
    }
    util::BitReader r(s);
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(r.get_bit(), expect[i]);
    }
  }
}

}  // namespace
}  // namespace ds
