// Width- and alignment-boundary regressions for the word-at-a-time bitio
// fast paths (ISSUE 9 satellite): every width in {0, 1, 63, 64} at every
// alignment mod 64, word-boundary crossings, put_zeros / put_words /
// get_words at aligned and unaligned cursors, and the bit_width_for
// power-of-two ladder.
#include "util/bitio.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ds::util {
namespace {

// A recognizable full-width payload whose low bits are nonzero at every
// width, so masking errors show up regardless of the width under test.
constexpr std::uint64_t kPayload = 0xA5A5'5A5A'C3C3'3C3Dull;

TEST(BitIoBoundary, EveryWidthAtEveryAlignment) {
  for (unsigned width : {0u, 1u, 2u, 31u, 32u, 33u, 63u, 64u}) {
    for (unsigned align = 0; align < 64; ++align) {
      BitWriter w;
      w.put_zeros(align);  // place the cursor at the alignment under test
      w.put_bits(kPayload, width);
      w.put_bits(0x3, 2);  // trailer: catches a corrupted open word
      ASSERT_EQ(w.bit_count(), align + width + 2u)
          << "width=" << width << " align=" << align;
      ASSERT_EQ(w.words().size(), (w.bit_count() + 63) / 64)
          << "width=" << width << " align=" << align;

      BitString bs(w);
      BitReader r(bs);
      ASSERT_EQ(r.get_bits(static_cast<unsigned>(align)), 0u);
      const std::uint64_t expect =
          width == 0 ? 0 : (kPayload & (~std::uint64_t{0} >> (64 - width)));
      ASSERT_EQ(r.get_bits(width), expect)
          << "width=" << width << " align=" << align;
      ASSERT_EQ(r.get_bits(2), 0x3u);
      ASSERT_EQ(r.bits_remaining(), 0u);
    }
  }
}

TEST(BitIoBoundary, Width64IsNotUndefined) {
  // width == 64 must mask with ~0 >> 0, not 1 << 64 (which would be UB
  // and, on x86, typically evaluates to 1, zeroing the value).
  BitWriter w;
  w.put_bits(~std::uint64_t{0}, 64);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(64), ~std::uint64_t{0});
}

TEST(BitIoBoundary, WidthZeroWritesAndReadsNothing) {
  BitWriter w;
  w.put_bits(kPayload, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.words().empty());
  w.put_bits(1, 1);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(0), 0u);
  EXPECT_EQ(r.position(), 0u);  // width-0 read does not advance
  EXPECT_TRUE(r.get_bit());
}

TEST(BitIoBoundary, BackToBack64BitWritesCrossEveryBoundary) {
  // 64-bit writes at alignment a spill exactly 64 - a bits; run all 64.
  for (unsigned align = 0; align < 64; ++align) {
    BitWriter w;
    w.put_zeros(align);
    const std::uint64_t vals[3] = {kPayload, ~kPayload, 0x0123'4567'89AB'CDEF};
    for (std::uint64_t v : vals) w.put_bits(v, 64);
    BitString bs(w);
    BitReader r(bs);
    ASSERT_EQ(r.get_bits(static_cast<unsigned>(align)), 0u);
    for (std::uint64_t v : vals)
      ASSERT_EQ(r.get_bits(64), v) << "align=" << align;
  }
}

TEST(BitIoBoundary, PutZerosKeepsWordInvariant) {
  for (std::size_t zeros : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
    BitWriter w;
    w.put_bits(0x7, 3);
    w.put_zeros(zeros);
    w.put_bits(0x5, 3);
    ASSERT_EQ(w.bit_count(), 6u + zeros);
    ASSERT_EQ(w.words().size(), (w.bit_count() + 63) / 64) << zeros;
    BitString bs(w);
    BitReader r(bs);
    ASSERT_EQ(r.get_bits(3), 0x7u);
    for (std::size_t i = 0; i < zeros; ++i) ASSERT_FALSE(r.get_bit());
    ASSERT_EQ(r.get_bits(3), 0x5u);
  }
}

TEST(BitIoBoundary, PutWordsGetWordsAllAlignments) {
  const std::vector<std::uint64_t> src = {kPayload, ~kPayload,
                                          0xFFFF'0000'FFFF'0000ull};
  for (unsigned align = 0; align < 64; ++align) {
    for (std::size_t nbits : {0u, 1u, 64u, 65u, 128u, 190u, 192u}) {
      BitWriter w;
      w.put_zeros(align);
      w.put_words(src, nbits);
      w.put_bits(0x1, 1);
      ASSERT_EQ(w.bit_count(), align + nbits + 1u);

      BitString bs(w);
      BitReader r(bs);
      ASSERT_EQ(r.get_bits(static_cast<unsigned>(align)), 0u);
      std::vector<std::uint64_t> out(src.size(), ~std::uint64_t{0});
      r.get_words(out, nbits);
      for (std::size_t i = 0; i < nbits; ++i) {
        const bool want = (src[i / 64] >> (i % 64)) & 1;
        const bool got = (out[i / 64] >> (i % 64)) & 1;
        ASSERT_EQ(got, want) << "align=" << align << " nbits=" << nbits
                             << " bit=" << i;
      }
      // Unused high bits of the last touched word must be zeroed.
      if (nbits % 64 != 0) {
        const std::uint64_t high = out[nbits / 64] >> (nbits % 64);
        ASSERT_EQ(high, 0u) << "align=" << align << " nbits=" << nbits;
      }
      ASSERT_TRUE(r.get_bit());
    }
  }
}

TEST(BitIoBoundary, BitWidthForTable) {
  // bit_width_for(n) = ceil(log2 n) = bits to address [0, n); table-driven
  // over every n <= 1025 against a direct definition.
  EXPECT_EQ(bit_width_for(0), 0u);
  EXPECT_EQ(bit_width_for(1), 0u);
  for (std::uint64_t n = 2; n <= 1025; ++n) {
    unsigned expect = 0;
    while ((std::uint64_t{1} << expect) < n) ++expect;
    ASSERT_EQ(bit_width_for(n), expect) << "n=" << n;
  }
}

TEST(BitIoBoundary, BitWidthForPowerOfTwoLadder) {
  // Exactly at 2^k the width must be k (values 0..2^k-1 fit in k bits);
  // at 2^k + 1 it must grow to k + 1; at 2^k - 1 it stays k.
  for (unsigned k = 1; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    ASSERT_EQ(bit_width_for(p), k) << "n=2^" << k;
    // 2^1 - 1 = 1 addresses the single value 0, i.e. zero bits.
    ASSERT_EQ(bit_width_for(p - 1), k == 1 ? 0u : k) << "n=2^" << k << "-1";
    ASSERT_EQ(bit_width_for(p + 1), k + 1) << "n=2^" << k << "+1";
  }
  EXPECT_EQ(bit_width_for(~std::uint64_t{0}), 64u);
}

TEST(BitIoBoundary, RoundTripValuesAtWidthBoundary) {
  // Every value written with bit_width_for(n) bits must survive the trip.
  util::Rng rng(0xB17B17);
  for (std::uint64_t n : {2u, 3u, 1024u, 1025u, 65536u, 65537u}) {
    const unsigned width = bit_width_for(n);
    BitWriter w;
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 50; ++i) vals.push_back(rng.next_below(n));
    vals.push_back(0);
    vals.push_back(n - 1);
    for (std::uint64_t v : vals) w.put_bits(v, width);
    BitString bs(w);
    BitReader r(bs);
    for (std::uint64_t v : vals) ASSERT_EQ(r.get_bits(width), v) << n;
  }
}

}  // namespace
}  // namespace ds::util
