#include "util/modular.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ds::util {
namespace {

TEST(Modular, MulModSmall) {
  EXPECT_EQ(mul_mod(3, 4, 5), 2u);
  EXPECT_EQ(mul_mod(0, 99, 7), 0u);
  EXPECT_EQ(mul_mod(6, 6, 7), 1u);
}

TEST(Modular, MulModLarge) {
  const std::uint64_t p = kDefaultPrime;
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(mul_mod(p - 1, p - 1, p), 1u);
  EXPECT_EQ(mul_mod(p - 1, 2, p), p - 2);
}

TEST(Modular, AddSubRoundTrip) {
  Rng rng(1);
  const std::uint64_t p = kDefaultPrime;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next_below(p);
    const std::uint64_t b = rng.next_below(p);
    EXPECT_EQ(sub_mod(add_mod(a, b, p), b, p), a);
    EXPECT_EQ(add_mod(sub_mod(a, b, p), b, p), a);
  }
}

TEST(Modular, PowModMatchesRepeatedMultiply) {
  const std::uint64_t p = 1000003;
  std::uint64_t acc = 1;
  for (std::uint64_t e = 0; e < 50; ++e) {
    EXPECT_EQ(pow_mod(7, e, p), acc);
    acc = mul_mod(acc, 7, p);
  }
}

TEST(Modular, PowModFermat) {
  const std::uint64_t p = kDefaultPrime;
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = 1 + rng.next_below(p - 1);
    EXPECT_EQ(pow_mod(a, p - 1, p), 1u);
  }
}

TEST(Modular, InvMod) {
  const std::uint64_t p = kDefaultPrime;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + rng.next_below(p - 1);
    EXPECT_EQ(mul_mod(a, inv_mod(a, p), p), 1u);
  }
}

TEST(Modular, IsPrimeSmall) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
}

TEST(Modular, IsPrimeKnownLarge) {
  EXPECT_TRUE(is_prime(kDefaultPrime));
  EXPECT_TRUE(is_prime((1ULL << 61) - 1));      // Mersenne prime
  EXPECT_FALSE(is_prime((1ULL << 61) - 2));
  EXPECT_TRUE(is_prime(2147483647ULL));         // 2^31 - 1
  // Carmichael numbers must not fool the deterministic witnesses.
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(1105));
  EXPECT_FALSE(is_prime(825265));
}

TEST(Modular, IsPrimeMatchesTrialDivision) {
  auto naive = [](std::uint64_t n) {
    if (n < 2) return false;
    for (std::uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) return false;
    }
    return true;
  };
  for (std::uint64_t n = 0; n < 2000; ++n) {
    EXPECT_EQ(is_prime(n), naive(n)) << n;
  }
}

TEST(Modular, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(7920), 7927u);
}

}  // namespace
}  // namespace ds::util
