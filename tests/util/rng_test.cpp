#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ds::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws));
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, ChildStreamsAreIndependentAndStable) {
  const Rng parent(99);
  Rng c1 = parent.child(1);
  Rng c1_again = parent.child(1);
  Rng c2 = parent.child(2);
  bool any_differ = false;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = c1.next();
    EXPECT_EQ(a, c1_again.next());
    if (a != c2.next()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Rng, ChildDoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.child(123);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, TwoWordChildTagsDistinct) {
  const Rng parent(5);
  Rng c1 = parent.child(1, 2);
  Rng c2 = parent.child(2, 1);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(31);
  for (std::uint32_t n : {0u, 1u, 2u, 17u, 100u}) {
    auto perm = rng.permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<std::uint32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, PermutationShuffles) {
  Rng rng(37);
  const auto perm = rng.permutation(50);
  std::uint32_t fixed_points = 0;
  for (std::uint32_t i = 0; i < 50; ++i) fixed_points += perm[i] == i;
  EXPECT_LT(fixed_points, 10u);  // expected ~1
}

TEST(Rng, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(41);
  for (int rep = 0; rep < 20; ++rep) {
    const auto sample = rng.sample_without_replacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::uint64_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementCoversUniformly) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  constexpr int kReps = 20000;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::uint64_t v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kReps * 3 / 10, 6 * std::sqrt(kReps * 0.3));
  }
}

TEST(Mix64, StatelessAndSensitive) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

}  // namespace
}  // namespace ds::util
