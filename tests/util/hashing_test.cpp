#include "util/hashing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace ds::util {
namespace {

TEST(KWiseHash, DeterministicGivenStream) {
  Rng a(5), b(5);
  KWiseHash h1(2, a), h2(2, b);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
}

TEST(KWiseHash, OutputsBelowPrime) {
  Rng rng(6);
  KWiseHash h(3, rng);
  for (std::uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h(x), h.prime());
}

TEST(KWiseHash, BoundedInRange) {
  Rng rng(7);
  KWiseHash h(2, rng);
  for (std::uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.bounded(x, 17), 17u);
}

TEST(KWiseHash, BoundedApproximatelyUniformAcrossFunctions) {
  // Pairwise independence: for fixed x, h(x) is uniform over the draw of h.
  Rng rng(8);
  constexpr int kFunctions = 4000;
  constexpr std::uint64_t kRange = 8;
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < kFunctions; ++i) {
    KWiseHash h(2, rng);
    ++histogram[h.bounded(12345, kRange)];
  }
  for (std::uint64_t b = 0; b < kRange; ++b) {
    EXPECT_NEAR(histogram[b], kFunctions / kRange,
                6 * std::sqrt(kFunctions / kRange));
  }
}

TEST(KWiseHash, PairwiseCollisionRate) {
  // Pr[h(x) == h(y) mod range] ~ 1/range for x != y.
  Rng rng(9);
  constexpr int kFunctions = 2000;
  constexpr std::uint64_t kRange = 16;
  int collisions = 0;
  for (int i = 0; i < kFunctions; ++i) {
    KWiseHash h(2, rng);
    if (h.bounded(3, kRange) == h.bounded(77, kRange)) ++collisions;
  }
  EXPECT_NEAR(collisions / static_cast<double>(kFunctions), 1.0 / kRange,
              0.02);
}

TEST(KWiseHash, IndependenceParameterStored) {
  Rng rng(10);
  for (unsigned k = 1; k <= 6; ++k) {
    KWiseHash h(k, rng);
    EXPECT_EQ(h.independence(), k);
  }
}

TEST(SampleLevel, GeometricDistribution) {
  Rng rng(11);
  constexpr unsigned kMaxLevel = 20;
  constexpr int kItems = 200000;
  KWiseHash h(2, rng);
  std::vector<int> at_least(kMaxLevel + 1, 0);
  for (std::uint64_t x = 0; x < kItems; ++x) {
    const unsigned level = sample_level(h, x, kMaxLevel);
    for (unsigned l = 0; l <= level; ++l) ++at_least[l];
  }
  // Pr[level >= l] ~ 2^-l.
  for (unsigned l = 1; l <= 8; ++l) {
    const double expected = kItems * std::pow(0.5, l);
    EXPECT_NEAR(at_least[l], expected, 6 * std::sqrt(expected) + 20.0)
        << "level " << l;
  }
}

TEST(SampleLevel, CappedAtMax) {
  Rng rng(12);
  KWiseHash h(2, rng);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LE(sample_level(h, x, 5), 5u);
  }
}

}  // namespace
}  // namespace ds::util
