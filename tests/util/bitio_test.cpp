#include "util/bitio.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ds::util {
namespace {

TEST(BitIo, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  BitString s(w);
  EXPECT_EQ(s.bit_count(), 0u);
}

TEST(BitIo, SingleBits) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) w.put_bit(b);
  EXPECT_EQ(w.bit_count(), 7u);
  BitString s(w);
  BitReader r(s);
  for (bool b : pattern) EXPECT_EQ(r.get_bit(), b);
  EXPECT_EQ(r.bits_remaining(), 0u);
}

TEST(BitIo, FixedWidthRoundTrip) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.put_bits(0xDEADBEEF, 32);
  w.put_bits(0, 0);  // zero-width write is a no-op
  w.put_bits(1, 1);
  EXPECT_EQ(w.bit_count(), 37u);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.get_bits(0), 0u);
  EXPECT_EQ(r.get_bits(1), 1u);
}

TEST(BitIo, MasksHighBits) {
  BitWriter w;
  w.put_bits(0xFF, 4);  // only low 4 bits should land
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(4), 0xFu);
  EXPECT_EQ(w.bit_count(), 4u);
}

TEST(BitIo, WordBoundarySpill) {
  BitWriter w;
  w.put_bits(0x1, 60);
  w.put_bits(0xABCD, 16);  // crosses the 64-bit word boundary
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(60), 0x1u);
  EXPECT_EQ(r.get_bits(16), 0xABCDu);
}

TEST(BitIo, Full64BitValues) {
  BitWriter w;
  w.put_bits(0xFFFFFFFFFFFFFFFFULL, 64);
  w.put_bits(0x123456789ABCDEF0ULL, 64);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_bits(64), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(r.get_bits(64), 0x123456789ABCDEF0ULL);
}

TEST(BitIo, GammaRoundTrip) {
  BitWriter w;
  for (std::uint64_t v = 1; v <= 100; ++v) w.put_gamma(v);
  w.put_gamma(1ULL << 40);
  BitString bs(w);
  BitReader r(bs);
  for (std::uint64_t v = 1; v <= 100; ++v) EXPECT_EQ(r.get_gamma(), v);
  EXPECT_EQ(r.get_gamma(), 1ULL << 40);
}

TEST(BitIo, GammaLengths) {
  // gamma(v) takes 2*floor(log2 v) + 1 bits.
  for (std::uint64_t v : {1ULL, 2ULL, 3ULL, 4ULL, 7ULL, 8ULL, 1000ULL}) {
    BitWriter w;
    w.put_gamma(v);
    unsigned log2v = 0;
    while ((v >> (log2v + 1)) != 0) ++log2v;
    EXPECT_EQ(w.bit_count(), 2 * log2v + 1) << "v=" << v;
  }
}

TEST(BitIo, DeltaRoundTrip) {
  BitWriter w;
  const std::uint64_t values[] = {1, 2, 3, 15, 16, 17, 12345, 1ULL << 50};
  for (std::uint64_t v : values) w.put_delta(v);
  BitString bs(w);
  BitReader r(bs);
  for (std::uint64_t v : values) EXPECT_EQ(r.get_delta(), v);
}

TEST(BitIo, SpanRoundTrip) {
  BitWriter w;
  const std::vector<std::uint32_t> values{3, 1, 4, 1, 5, 9, 2, 6};
  w.put_u32_span(values, 5);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_EQ(r.get_u32_span(5), values);
}

TEST(BitIo, EmptySpanRoundTrip) {
  BitWriter w;
  w.put_u32_span({}, 10);
  BitString bs(w);
  BitReader r(bs);
  EXPECT_TRUE(r.get_u32_span(10).empty());
}

TEST(BitIo, MixedStreamFuzz) {
  Rng rng(2024);
  for (int rep = 0; rep < 50; ++rep) {
    BitWriter w;
    struct Item {
      int kind;
      std::uint64_t value;
      unsigned width;
    };
    std::vector<Item> items;
    for (int i = 0; i < 100; ++i) {
      Item item;
      item.kind = static_cast<int>(rng.next_below(3));
      switch (item.kind) {
        case 0:
          item.width = 1 + static_cast<unsigned>(rng.next_below(64));
          item.value = rng.next() &
                       (item.width == 64
                            ? ~0ULL
                            : ((std::uint64_t{1} << item.width) - 1));
          w.put_bits(item.value, item.width);
          break;
        case 1:
          item.value = 1 + rng.next_below(1ULL << 32);
          w.put_gamma(item.value);
          break;
        default:
          item.value = 1 + rng.next_below(1ULL << 32);
          w.put_delta(item.value);
      }
      items.push_back(item);
    }
    BitString bs(w);
  BitReader r(bs);
    for (const Item& item : items) {
      switch (item.kind) {
        case 0:
          EXPECT_EQ(r.get_bits(item.width), item.value);
          break;
        case 1:
          EXPECT_EQ(r.get_gamma(), item.value);
          break;
        default:
          EXPECT_EQ(r.get_delta(), item.value);
      }
    }
    EXPECT_EQ(r.bits_remaining(), 0u);
  }
}

TEST(BitWidthFor, Values) {
  EXPECT_EQ(bit_width_for(0), 0u);
  EXPECT_EQ(bit_width_for(1), 0u);
  EXPECT_EQ(bit_width_for(2), 1u);
  EXPECT_EQ(bit_width_for(3), 2u);
  EXPECT_EQ(bit_width_for(4), 2u);
  EXPECT_EQ(bit_width_for(5), 3u);
  EXPECT_EQ(bit_width_for(1024), 10u);
  EXPECT_EQ(bit_width_for(1025), 11u);
}

}  // namespace
}  // namespace ds::util
