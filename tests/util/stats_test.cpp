#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ds::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(18.0), 1e-12);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(WilsonInterval, NoTrials) {
  const Interval iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::size_t n : {10u, 100u, 1000u}) {
    for (std::size_t k = 0; k <= n; k += n / 10) {
      const Interval iv = wilson_interval(k, n);
      const double p = static_cast<double>(k) / static_cast<double>(n);
      EXPECT_LE(iv.lo, p + 1e-12);
      EXPECT_GE(iv.hi, p - 1e-12);
      EXPECT_GE(iv.lo, 0.0);
      EXPECT_LE(iv.hi, 1.0);
    }
  }
}

TEST(WilsonInterval, NarrowsWithMoreTrials) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonInterval, ExtremeCounts) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.1);
  const Interval all = wilson_interval(100, 100);
  EXPECT_GT(all.hi, 0.999);
  EXPECT_GT(all.lo, 0.9);
}

TEST(ChernoffLowerTail, KnownValues) {
  // Pr[X <= (1-delta) mu] <= exp(-delta^2 mu / 2).
  EXPECT_DOUBLE_EQ(chernoff_lower_tail(0.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(chernoff_lower_tail(10.0, 0.0), 1.0);
  EXPECT_NEAR(chernoff_lower_tail(100.0, 0.5), std::exp(-12.5), 1e-12);
  EXPECT_LT(chernoff_lower_tail(1000.0, 0.3), 1e-15);
}

TEST(ChernoffLowerTail, Claim31Shape) {
  // The paper's use: mu = kr/2, shortfall to kr/3 means delta = 1/3, so
  // this (loose, quadratic) form gives exp(-kr/36) — exponentially small
  // in kr, which is all Claim 3.1 needs.
  const double kr = 200.0;
  const double bound = chernoff_lower_tail(kr / 2.0, 1.0 / 3.0);
  EXPECT_NEAR(bound, std::exp(-kr / 36.0), 1e-12);
  EXPECT_LT(bound, 0.01);
  EXPECT_LT(chernoff_lower_tail(2 * kr / 2.0, 1.0 / 3.0), bound);
}

}  // namespace
}  // namespace ds::util
