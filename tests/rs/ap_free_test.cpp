#include "rs/ap_free.h"

#include <gtest/gtest.h>

namespace ds::rs {
namespace {

TEST(ApFree, CheckerAcceptsKnownFreeSets) {
  EXPECT_TRUE(is_3ap_free(std::vector<std::uint64_t>{}));
  EXPECT_TRUE(is_3ap_free(std::vector<std::uint64_t>{5}));
  EXPECT_TRUE(is_3ap_free(std::vector<std::uint64_t>{0, 1}));
  EXPECT_TRUE(is_3ap_free(std::vector<std::uint64_t>{0, 1, 3, 4}));
  EXPECT_TRUE(is_3ap_free(std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
}

TEST(ApFree, CheckerRejectsProgressions) {
  EXPECT_FALSE(is_3ap_free(std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_FALSE(is_3ap_free(std::vector<std::uint64_t>{1, 5, 9}));
  EXPECT_FALSE(is_3ap_free(std::vector<std::uint64_t>{0, 3, 4, 8}));  // 0,4,8
  EXPECT_FALSE(is_3ap_free(std::vector<std::uint64_t>{2, 11, 20}));
}

TEST(ApFree, TernarySetContents) {
  // First elements: 0, 1, 3, 4, 9, 10, 12, 13, 27, ...
  const auto s = ternary_ap_free_set(30);
  const std::vector<std::uint64_t> expected{0, 1, 3, 4, 9, 10, 12, 13, 27, 28};
  EXPECT_EQ(s, expected);
}

TEST(ApFree, TernarySetIsApFreeAndSorted) {
  for (std::uint64_t m : {10ULL, 100ULL, 1000ULL, 5000ULL}) {
    const auto s = ternary_ap_free_set(m);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(is_3ap_free(s)) << "m=" << m;
    for (std::uint64_t v : s) EXPECT_LT(v, m);
  }
}

TEST(ApFree, TernaryDensity) {
  // |S| = 2^ceil stuff: for m = 3^k, exactly 2^k elements.
  EXPECT_EQ(ternary_ap_free_set(3).size(), 2u);
  EXPECT_EQ(ternary_ap_free_set(9).size(), 4u);
  EXPECT_EQ(ternary_ap_free_set(27).size(), 8u);
  EXPECT_EQ(ternary_ap_free_set(243).size(), 32u);
}

TEST(ApFree, BehrendSetIsApFree) {
  for (std::uint64_t m : {50ULL, 200ULL, 1000ULL, 20000ULL}) {
    for (unsigned d : {1u, 2u, 3u}) {
      const auto s = behrend_set(m, d);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      EXPECT_TRUE(is_3ap_free(s)) << "m=" << m << " d=" << d;
      for (std::uint64_t v : s) EXPECT_LT(v, m);
    }
  }
}

TEST(ApFree, BehrendOneDimIsSingleSphere) {
  // d=1: spheres are single points except... each norm has one point, so
  // the best sphere is a singleton.
  const auto s = behrend_set(100, 1);
  EXPECT_EQ(s.size(), 1u);
}

TEST(ApFree, DensestIsApFreeAndAtLeastTernary) {
  for (std::uint64_t m : {10ULL, 100ULL, 729ULL, 5000ULL, 50000ULL}) {
    const auto best = densest_ap_free_set(m);
    EXPECT_TRUE(is_3ap_free(best));
    EXPECT_GE(best.size(), ternary_ap_free_set(m).size());
  }
}

TEST(ApFree, DensestPicksTheBetterConstruction) {
  // Behrend's asymptotic advantage over the ternary set only kicks in at
  // astronomically large m (the crossover of m^{log_3 2} vs
  // m/e^{c sqrt(log m)} is far beyond laptop scale); at every practical m
  // the densest set equals the better of the two — and the ternary set
  // itself already exhibits the sub-polynomial density decay
  // Proposition 2.1 needs.
  for (std::uint64_t m : {100ULL, 10000ULL, 100000ULL}) {
    const auto best = densest_ap_free_set(m);
    const auto ternary = ternary_ap_free_set(m);
    EXPECT_GE(best.size(), ternary.size());
  }
  // Density m^{log_3 2 - 1} decays: |S(9m)|/(9m) < |S(m)|/m.
  const double d1 =
      static_cast<double>(ternary_ap_free_set(1000).size()) / 1000.0;
  const double d9 =
      static_cast<double>(ternary_ap_free_set(9000).size()) / 9000.0;
  EXPECT_LT(d9, d1);
}

}  // namespace
}  // namespace ds::rs
