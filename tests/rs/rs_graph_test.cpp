#include "rs/rs_graph.h"

#include <gtest/gtest.h>

#include "rs/ap_free.h"

namespace ds::rs {
namespace {

TEST(RsGraph, BookIsValidRs) {
  for (std::uint32_t r : {1u, 2u, 3u}) {
    for (std::uint32_t t : {1u, 2u, 4u}) {
      const RsGraph book = book_rs(r, t);
      EXPECT_EQ(book.num_vertices(), r + r * t);
      EXPECT_EQ(book.t(), t);
      EXPECT_EQ(book.r(), r);
      EXPECT_TRUE(verify_rs(book)) << "r=" << r << " t=" << t;
    }
  }
}

TEST(RsGraph, BehrendConstructionIsValidRs) {
  for (std::uint64_t m : {5ULL, 10ULL, 30ULL, 60ULL}) {
    const RsGraph rs = rs_graph(m);
    EXPECT_EQ(rs.t(), m);
    EXPECT_EQ(rs.num_vertices(), 5 * m - 3);
    EXPECT_TRUE(verify_rs(rs)) << "m=" << m;
  }
}

TEST(RsGraph, ConstructionFromExplicitSet) {
  const std::vector<std::uint64_t> s{0, 1, 3, 4};
  const RsGraph rs = rs_from_ap_free(10, s);
  EXPECT_EQ(rs.r(), 4u);
  EXPECT_EQ(rs.t(), 10u);
  EXPECT_EQ(rs.graph.num_edges(), 40u);
  EXPECT_TRUE(verify_rs(rs));
}

TEST(RsGraph, NonApFreeSetBreaksInducedness) {
  // {0, 1, 2} contains a 3-AP; the matchings should fail the induced
  // check, demonstrating the validator has teeth.
  const std::vector<std::uint64_t> bad{0, 1, 2};
  ASSERT_FALSE(is_3ap_free(bad));
  const RsGraph rs = rs_from_ap_free(10, bad);
  EXPECT_FALSE(verify_rs(rs));
}

TEST(RsGraph, MatchingVerticesAre2rDistinct) {
  const RsGraph rs = rs_graph(20);
  for (std::size_t j = 0; j < rs.t(); j += 5) {
    const auto vertices = rs.matching_vertices(j);
    EXPECT_EQ(vertices.size(), 2 * rs.r());
    for (std::size_t i = 1; i < vertices.size(); ++i) {
      EXPECT_LT(vertices[i - 1], vertices[i]);  // sorted and distinct
    }
  }
}

TEST(RsGraph, EdgesPartitionExactly) {
  const RsGraph rs = rs_graph(15);
  std::size_t total = 0;
  for (const auto& m : rs.matchings) total += m.size();
  EXPECT_EQ(total, rs.graph.num_edges());
  EXPECT_EQ(total, rs.r() * rs.t());
}

TEST(RsGraph, ParametersMatchProposition21Shape) {
  // r grows superlinearly in no... r = |S(m)| grows roughly like
  // m / e^{Theta(sqrt(log m))}: check monotonicity and the t = N/5 shape.
  const RsParameters p1 = rs_parameters(100);
  const RsParameters p2 = rs_parameters(400);
  EXPECT_EQ(p1.t, 100u);
  EXPECT_EQ(p1.n, 497u);
  EXPECT_GT(p2.r, p1.r);
  EXPECT_LT(p2.r, p2.t);  // r = o(m): the AP-free set is sublinear
}

TEST(RsGraph, BookVsBehrendTradeoff) {
  // The book graph achieves any (r, t) but with N = r(t+1) vertices;
  // Behrend packs t = N/5 matchings of size r = |S| into N = 5m-3. For
  // equal N, Behrend's r*t product (total edges) is much larger.
  const RsGraph behrend = rs_graph(40);           // N = 197
  const RsGraph book = book_rs(5, 39);            // N = 200
  EXPECT_GT(behrend.r() * behrend.t(), book.r() * book.t());
}

}  // namespace
}  // namespace ds::rs
