#include <gtest/gtest.h>

#include "lowerbound/claims.h"
#include "rs/ap_free.h"
#include "rs/rs_graph.h"

namespace ds::rs {
namespace {

TEST(TripartiteRs, ValidRsAcrossSizes) {
  for (std::uint64_t q : {7ULL, 13ULL, 25ULL, 49ULL, 101ULL}) {
    const RsGraph rs = tripartite_rs(q);
    EXPECT_EQ(rs.num_vertices(), 3 * q);
    EXPECT_EQ(rs.t(), 3 * q);  // t = N: three link families of q each
    EXPECT_TRUE(verify_rs(rs)) << "q=" << q;
  }
}

TEST(TripartiteRs, ExplicitSetConstruction) {
  const std::vector<std::uint64_t> s{0, 1, 3, 4};
  const RsGraph rs = tripartite_rs(15, s);
  EXPECT_EQ(rs.r(), 4u);
  EXPECT_EQ(rs.graph.num_edges(), 3u * 15 * 4);
  EXPECT_TRUE(verify_rs(rs));
}

TEST(TripartiteRs, DensityBeatsBipartitePerVertex) {
  // Same N: tripartite packs t = N matchings vs the bipartite layout's
  // t = N/5, at comparable r — about 5x the edges per vertex.
  const RsGraph tri = tripartite_rs(25);     // N = 75
  const RsGraph bi = rs_graph(15);           // N = 72
  const double tri_density =
      static_cast<double>(tri.graph.num_edges()) / tri.num_vertices();
  const double bi_density =
      static_cast<double>(bi.graph.num_edges()) / bi.num_vertices();
  EXPECT_GT(tri_density, 2 * bi_density);
}

TEST(TripartiteRs, TripartiteNoIntraBlockEdges) {
  const RsGraph rs = tripartite_rs(13);
  const std::uint64_t q = 13;
  for (const graph::Edge& e : rs.graph.edges()) {
    EXPECT_NE(e.u / q, e.v / q) << "intra-block edge";
  }
}

TEST(TripartiteRs, WorksAsDmmSubstrate) {
  // sample_dmm is substrate-agnostic: run it over the tripartite family
  // and audit Claim 3.1 mechanics.
  const RsGraph base = tripartite_rs(13);
  util::Rng rng(5);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, /*k=*/60, rng);
  EXPECT_EQ(inst.params.n,
            inst.params.big_n - 2 * inst.params.r +
                2 * inst.params.r * inst.params.k);
  const auto audit = lowerbound::audit_claim31(
      inst, lowerbound::adversarial_maximal_matching(inst));
  EXPECT_EQ(audit.forced_edges_missing, 0u);
  EXPECT_TRUE(audit.chernoff_event);
}

}  // namespace
}  // namespace ds::rs
