// The sharded referee and the collection-loop fairness fix.
//
// Three layers under test: (1) fair_poll_slice / the blocking collect
// loop — the regression where a slow link could starve another link's
// ready frames out of the round (SlowReaderCannotStarveOtherLinks);
// (2) the shard vocabulary — shard_range tiling and the combiner's
// deterministic cross-shard duplicate resolution; (3) the sharded
// service end to end over socketpair connections, bit-identical to the
// in-process runner.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/spanning_forest.h"
#include "protocols/two_round_matching.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/shard.h"
#include "service/sharded_referee.h"
#include "wire/tcp.h"

namespace ds {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kCoinSeed = 2020;

graph::Graph test_graph(graph::Vertex n, std::uint64_t seed,
                        double p = 0.15) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

// ---------------------------------------------------------------------
// fair_poll_slice: the pure function.
// ---------------------------------------------------------------------

TEST(FairPollSlice, DividesTheRemainderAcrossLiveLinks) {
  EXPECT_EQ(service::fair_poll_slice(80ms, 8), 10ms);
  EXPECT_EQ(service::fair_poll_slice(100ms, 4), 20ms);  // hits the cap
  EXPECT_EQ(service::fair_poll_slice(1000ms, 2), 20ms);
}

TEST(FairPollSlice, ClampsToTheCapAndToOneMillisecond) {
  EXPECT_EQ(service::fair_poll_slice(500ms, 1), 20ms);
  EXPECT_EQ(service::fair_poll_slice(3ms, 8), 1ms);  // never a 0 busy-spin
  EXPECT_EQ(service::fair_poll_slice(0ms, 8), 0ms);
  EXPECT_EQ(service::fair_poll_slice(-5ms, 3), 0ms);
  EXPECT_EQ(service::fair_poll_slice(40ms, 0), 20ms);  // 0 links: as 1
}

// ---------------------------------------------------------------------
// The starvation regression.
// ---------------------------------------------------------------------

/// A link whose reader never produces anything and blocks for the whole
/// slice it is given — the "slow reader" of the regression.
class SlowLink final : public wire::Link {
 public:
  bool send(std::span<const std::uint8_t>) override { return true; }
  wire::RecvResult recv(std::chrono::milliseconds timeout) override {
    std::this_thread::sleep_for(timeout);
    return {};
  }
  std::size_t bytes_sent() const noexcept override { return 0; }
  std::size_t bytes_received() const noexcept override { return 0; }
};

/// A link whose message "arrives" at a fixed instant: a recv whose
/// window covers that instant delivers; earlier windows sleep out their
/// slice and time out.  recv(0) only sees it if it has already arrived
/// — exactly how poll(timeout=0) treats socket data.
class TimedDeliveryLink final : public wire::Link {
 public:
  TimedDeliveryLink(Clock::time_point available_at,
                    std::vector<std::uint8_t> message)
      : available_at_(available_at), message_(std::move(message)) {}

  bool send(std::span<const std::uint8_t>) override { return true; }

  wire::RecvResult recv(std::chrono::milliseconds timeout) override {
    ++polls_;
    if (delivered_) {
      std::this_thread::sleep_for(timeout);
      return {};
    }
    const Clock::time_point window_end = Clock::now() + timeout;
    if (window_end < available_at_) {
      std::this_thread::sleep_for(timeout);
      return {};
    }
    std::this_thread::sleep_until(available_at_);
    delivered_ = true;
    return {wire::RecvStatus::kOk, message_};
  }

  std::size_t bytes_sent() const noexcept override { return 0; }
  std::size_t bytes_received() const noexcept override {
    return delivered_ ? message_.size() : 0;
  }
  [[nodiscard]] int polls() const noexcept { return polls_; }

 private:
  Clock::time_point available_at_;
  std::vector<std::uint8_t> message_;
  bool delivered_ = false;
  int polls_ = 0;
};

TEST(CollectFairness, SlowReaderCannotStarveOtherLinks) {
  // The pre-fix loop gave every link min(remaining, 20ms): with the
  // delivering link polled FIRST in the pass and seven slow readers
  // behind it, the slow readers consumed the entire remainder (7 x 20ms
  // per pass against a short deadline), so the deliverer — whose batch
  // arrives mid-round — was polled once at t~0 and never again before
  // the deadline error.  fair_poll_slice divides the remainder by the
  // live-link count, so every pass ends with budget still on the clock
  // and the deliverer's mid-round arrival is always seen.
  const graph::Vertex n = 6;
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);
  const graph::Graph g = test_graph(n, 11, 0.4);
  const std::uint32_t proto = wire::protocol_id(protocol.name());

  std::vector<std::uint8_t> batch;
  for (graph::Vertex v = 0; v < n; ++v) {
    const model::VertexView view{n, v, g.neighbors(v), &coins};
    util::BitWriter w;
    protocol.encode(view, w);
    (void)service::append_sketch_frame(batch, proto, v, 0,
                                       util::BitString(w));
  }

  // 16 slow readers at the old fixed 20ms slice cost 340ms per pass —
  // past this 300ms deadline — so the pre-fix loop polled the deliverer
  // exactly once (its t~0 window, before the batch exists) and then
  // burned the whole round sleeping on the slow links: a guaranteed
  // deadline error.  With fair slices a pass costs a fraction of the
  // remainder, so pass 2 reaches the deliverer around t=200 with budget
  // to spare.  The 80ms arrival sits far from both edges (first-window
  // end ~20ms, deadline 300ms), so scheduler jitter cannot flip the
  // outcome.
  constexpr auto kTimeout = 300ms;
  const Clock::time_point available_at = Clock::now() + 80ms;

  std::vector<std::unique_ptr<wire::Link>> links;
  auto deliverer =
      std::make_unique<TimedDeliveryLink>(available_at, batch);
  TimedDeliveryLink* deliverer_view = deliverer.get();
  links.push_back(std::move(deliverer));  // polled first in every pass
  for (int i = 0; i < 16; ++i) links.push_back(std::make_unique<SlowLink>());

  const service::CollectedRound round =
      service::collect_sketch_round(links, n, proto, 0, kTimeout);

  EXPECT_EQ(round.sketches.size(), n);
  EXPECT_EQ(round.wire.frames, n);
  // The fix is visible in the poll count: the deliverer was revisited
  // after its first empty window instead of starving behind the slow
  // readers.
  EXPECT_GE(deliverer_view->polls(), 2);
}

// ---------------------------------------------------------------------
// shard_range and the combiner.
// ---------------------------------------------------------------------

TEST(ShardRange, TilesTheVertexSpaceContiguously) {
  for (const graph::Vertex n : {1u, 7u, 16u, 97u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 8u}) {
      graph::Vertex expect_lo = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        const auto [lo, hi] = service::shard_range(n, parts, i);
        EXPECT_EQ(lo, expect_lo);
        EXPECT_GE(hi, lo);
        // Sizes differ by at most one across shards.
        EXPECT_LE(hi - lo, n / parts + 1);
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, n);
    }
  }
}

TEST(ShardRange, AgreesWithPlayerShardVertices) {
  const graph::Vertex n = 23;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto [lo, hi] = service::shard_range(n, 4, i);
    const std::vector<graph::Vertex> owned =
        service::shard_vertices(n, 4, i);
    ASSERT_EQ(owned.size(), static_cast<std::size_t>(hi - lo));
    if (!owned.empty()) {
      EXPECT_EQ(owned.front(), lo);
      EXPECT_EQ(owned.back(), hi - 1);
    }
  }
}

util::BitString bits_of(std::uint64_t value, unsigned width) {
  util::BitWriter w;
  w.put_bits(value, width);
  return util::BitString(std::move(w));
}

/// A ShardRound holding `verts` with small distinct payloads, accounted
/// the way RefereeShard::collect_round accounts accepted frames.
service::ShardRound make_shard_round(const service::ShardRoundSpec& spec,
                                     std::vector<graph::Vertex> verts) {
  service::ShardRound r;
  r.sketches.resize(spec.n);
  r.have.assign(spec.n, false);
  for (const graph::Vertex v : verts) {
    util::BitString payload = bits_of(v + 1, 8);
    const wire::FrameHeader h{wire::FrameType::kSketch, spec.protocol_id, v,
                              spec.round};
    r.have[v] = true;
    ++r.wire.frames;
    r.wire.payload_bits += payload.bit_count();
    r.wire.framing_bits +=
        wire::encoded_frame_size(h, payload.bit_count()) * 8 -
        payload.bit_count();
    r.sketches[v] = std::move(payload);
  }
  ++r.wire.messages;
  return r;
}

TEST(CombineShardRounds, MergesDisjointShardsCompletely) {
  const service::ShardRoundSpec spec{6, 42, 0};
  std::vector<service::ShardRound> rounds;
  rounds.push_back(make_shard_round(spec, {0, 1, 2}));
  rounds.push_back(make_shard_round(spec, {3, 4, 5}));

  const service::CollectedRound out =
      service::combine_shard_rounds(spec, rounds);
  ASSERT_EQ(out.sketches.size(), 6u);
  EXPECT_EQ(out.wire.frames, 6u);
  EXPECT_EQ(out.wire.rejected_frames, 0u);
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(out.sketches[v].bit_count(), 8u) << "vertex " << v;
  }
}

TEST(CombineShardRounds, CrossShardDuplicateResolvesToLowestShard) {
  // Vertex 2 accepted by both shards with different payloads: the
  // combiner must keep shard 0's copy (deterministic, independent of
  // collection timing) and re-account shard 1's as a rejection, leaving
  // the totals exactly what a single referee would have recorded.
  const service::ShardRoundSpec spec{4, 42, 0};
  std::vector<service::ShardRound> rounds;
  rounds.push_back(make_shard_round(spec, {0, 1, 2}));
  rounds.push_back(make_shard_round(spec, {2, 3}));
  // Overwrite shard 1's copy of vertex 2 so the winner is observable.
  rounds[1].sketches[2] = bits_of(0xEE, 8);

  const service::CollectedRound out =
      service::combine_shard_rounds(spec, rounds);
  EXPECT_EQ(out.wire.frames, 4u);  // the duplicate is not double-counted
  EXPECT_EQ(out.wire.rejected_frames, 1u);
  EXPECT_EQ(out.wire.payload_bits, 4u * 8u);
  ASSERT_EQ(out.rejects.size(), 1u);
  EXPECT_NE(out.rejects[0].find("cross-shard"), std::string::npos);
  // Shard 0 wrote v+1 = 3; shard 1's 0xEE lost.
  EXPECT_EQ(out.sketches[2].words()[0], 3u);
}

TEST(CombineShardRounds, MissingVertexIsACleanDeadlineError) {
  const service::ShardRoundSpec spec{5, 42, 0};
  std::vector<service::ShardRound> rounds;
  rounds.push_back(make_shard_round(spec, {0, 1}));
  rounds.push_back(make_shard_round(spec, {3, 4}));  // vertex 2 missing
  EXPECT_THROW((void)service::combine_shard_rounds(spec, rounds),
               service::ServiceError);
}

// ---------------------------------------------------------------------
// The sharded service end to end (socketpair connections: the referee
// side adopted into shard event loops, the player side a blocking
// TcpLink — exactly the mixed deployment docs/WIRE.md promises works).
// ---------------------------------------------------------------------

struct ShardedCluster {
  service::ShardedRefereeService referee;
  std::vector<std::unique_ptr<wire::Link>> players;

  ShardedCluster(std::size_t shards, std::size_t num_players,
                 std::uint64_t coin_seed,
                 std::chrono::milliseconds timeout)
      : referee(shards, coin_seed, timeout) {
    for (std::size_t i = 0; i < num_players; ++i) {
      int fds[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        throw std::runtime_error("socketpair failed");
      }
      (void)referee.adopt_fd(fds[0]);
      players.push_back(wire::tcp_adopt_fd(fds[1]));
    }
  }
};

TEST(ShardedReferee, TwoShardsMatchInProcessRunnerExactly) {
  const graph::Graph g = test_graph(40, 1);
  const protocols::AgmSpanningForest protocol;
  const model::PublicCoins coins(kCoinSeed);
  constexpr std::size_t kPlayers = 4;

  ShardedCluster cluster(2, kPlayers, kCoinSeed, 5000ms);
  std::vector<std::thread> threads;
  std::vector<model::ForestOutput> player_results(kPlayers);
  threads.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    threads.emplace_back([&, i] {
      const std::vector<graph::Vertex> owned =
          service::shard_vertices(g.num_vertices(), kPlayers, i);
      player_results[i] = service::play_protocol(
          *cluster.players[i], g, owned, protocol, coins, 5000ms);
    });
  }
  const service::ServeResult<model::ForestOutput> served =
      cluster.referee.run(protocol, g.num_vertices());
  for (std::thread& t : threads) t.join();

  const auto simulated = model::run_protocol(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.max_bits, simulated.comm.max_bits);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.comm.num_players, simulated.comm.num_players);
  EXPECT_EQ(served.uplink.payload_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.uplink.frames, g.num_vertices());
  EXPECT_EQ(served.uplink.rejected_frames, 0u);
  for (const model::ForestOutput& result : player_results) {
    EXPECT_EQ(result, simulated.output);
  }
}

TEST(ShardedReferee, AdaptiveTwoRoundOverFourShards) {
  const graph::Graph g = test_graph(36, 3, 0.2);
  const protocols::TwoRoundMatching protocol{4, 8};
  const model::PublicCoins coins(kCoinSeed);
  constexpr std::size_t kPlayers = 4;

  ShardedCluster cluster(4, kPlayers, kCoinSeed, 5000ms);
  std::vector<std::thread> threads;
  std::vector<model::MatchingOutput> player_results(kPlayers);
  threads.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    threads.emplace_back([&, i] {
      const std::vector<graph::Vertex> owned =
          service::shard_vertices(g.num_vertices(), kPlayers, i);
      player_results[i] = service::play_adaptive(
          *cluster.players[i], g, owned, protocol, coins, 5000ms);
    });
  }
  const service::AdaptiveServeResult<model::MatchingOutput> served =
      cluster.referee.run_adaptive(protocol, g.num_vertices());
  for (std::thread& t : threads) t.join();

  const auto simulated = model::run_adaptive(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.max_bits, simulated.comm.max_bits);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.broadcast_bits, simulated.broadcast_bits);
  ASSERT_EQ(served.by_round.size(), simulated.by_round.size());
  for (std::size_t r = 0; r < served.by_round.size(); ++r) {
    EXPECT_EQ(served.by_round[r].total_bits,
              simulated.by_round[r].total_bits);
  }
  for (const model::MatchingOutput& result : player_results) {
    EXPECT_EQ(result, simulated.output);
  }
}

TEST(ShardedReferee, MoreShardsThanConnectionsStillCompletes) {
  // Empty shards must idle harmlessly while the populated ones carry
  // the round.
  const graph::Graph g = test_graph(12, 4, 0.3);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);

  ShardedCluster cluster(6, 2, kCoinSeed, 5000ms);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      const std::vector<graph::Vertex> owned =
          service::shard_vertices(g.num_vertices(), 2, i);
      (void)service::play_protocol(*cluster.players[i], g, owned, protocol,
                                   coins, 5000ms);
    });
  }
  const auto served = cluster.referee.run(protocol, g.num_vertices());
  for (std::thread& t : threads) t.join();

  const auto simulated = model::run_protocol(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
}

TEST(ShardedReferee, MissingPlayerIsACleanDeadlineError) {
  const graph::Graph g = test_graph(8, 6, 0.3);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);

  ShardedCluster cluster(2, 2, kCoinSeed, 300ms);
  // Player 0 sends only vertex 0; player 1 never shows up.
  const graph::Vertex v0[] = {0};
  (void)service::send_sketches(*cluster.players[0], g, v0, protocol, coins);

  EXPECT_THROW((void)cluster.referee.run(protocol, g.num_vertices()),
               service::ServiceError);
}

}  // namespace
}  // namespace ds
