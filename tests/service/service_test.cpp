// The referee service end-to-end: loopback sessions must reproduce the
// in-process runner exactly (output AND bit accounting), the adaptive
// multi-round loop must complete over real TCP, and a referee fed corrupt
// or duplicate frames must reject them and finish the round from the
// retransmission instead of crashing.
#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.h"
#include "model/runner.h"
#include "obs/obs.h"
#include "protocols/spanning_forest.h"
#include "protocols/two_round_matching.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"
#include "wire/tcp.h"

namespace ds {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kCoinSeed = 2020;

graph::Graph test_graph(graph::Vertex n, std::uint64_t seed,
                        double p = 0.15) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

/// Wire up `players` loopback clients to one referee; returns the
/// referee-side links and the player-side links, index-aligned.
struct LoopbackCluster {
  std::vector<std::unique_ptr<wire::Link>> referee;
  std::vector<std::unique_ptr<wire::Link>> players;
};

LoopbackCluster make_cluster(std::size_t players) {
  LoopbackCluster cluster;
  for (std::size_t i = 0; i < players; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    cluster.referee.push_back(std::move(pair.referee_side));
    cluster.players.push_back(std::move(pair.player_side));
  }
  return cluster;
}

TEST(RefereeService, LoopbackMatchesInProcessRunnerExactly) {
  const graph::Graph g = test_graph(40, 1);
  const protocols::AgmSpanningForest protocol;
  const model::PublicCoins coins(kCoinSeed);

  LoopbackCluster cluster = make_cluster(3);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::vector<graph::Vertex> owned =
        service::shard_vertices(g.num_vertices(), 3, i);
    (void)service::send_sketches(*cluster.players[i], g, owned, protocol,
                                 coins);
  }
  const service::ServeResult<model::ForestOutput> served =
      service::serve_protocol(cluster.referee, protocol, g.num_vertices(),
                              coins, 2000ms);
  const auto simulated = model::run_protocol(g, protocol, coins);

  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.max_bits, simulated.comm.max_bits);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.comm.num_players, simulated.comm.num_players);
  EXPECT_EQ(served.uplink.payload_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.uplink.frames, g.num_vertices());
  EXPECT_GT(served.uplink.framing_bits, 0u);

  // Every player decodes the broadcast result identically.
  for (std::size_t i = 0; i < 3; ++i) {
    const model::ForestOutput result =
        service::await_result(*cluster.players[i], protocol, 1000ms);
    EXPECT_EQ(result, simulated.output);
  }
}

TEST(RefereeService, PlayerThreadsOverLoopback) {
  // Full client loop (send + await) on separate threads against the
  // referee template — the shape the TCP deployment uses.
  const graph::Graph g = test_graph(30, 2);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);

  LoopbackCluster cluster = make_cluster(2);
  std::vector<std::uint32_t> player_results(2);
  std::vector<std::thread> threads;
  threads.reserve(2);
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      const std::vector<graph::Vertex> owned =
          service::shard_vertices(g.num_vertices(), 2, i);
      player_results[i] = service::play_protocol(
          *cluster.players[i], g, owned, protocol, coins, 2000ms);
    });
  }
  const auto served = service::serve_protocol(
      cluster.referee, protocol, g.num_vertices(), coins, 2000ms);
  for (std::thread& t : threads) t.join();

  const auto simulated = model::run_protocol(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(player_results[0], simulated.output);
  EXPECT_EQ(player_results[1], simulated.output);
}

TEST(RefereeService, AdaptiveTwoRoundCompletesOverTcp) {
  // The acceptance-criteria case: a multi-round adaptive protocol over
  // the TCP transport, players in their own threads.  Metrics are
  // snapshotted around the session to pin the connection-reuse
  // contract: one connect per player for the WHOLE adaptive run, every
  // round riding the same link (a client reconnecting per round would
  // double the count and fail below).
  const graph::Graph g = test_graph(36, 3, 0.2);
  const protocols::TwoRoundMatching protocol{4, 8};
  const model::PublicCoins coins(kCoinSeed);
  constexpr std::size_t kPlayers = 3;

  const bool metrics_were_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  const std::size_t connects_before =
      obs::counter("wire.tcp.connects").value();
  const std::size_t accepts_before =
      obs::counter("wire.tcp.accepts").value();

  wire::TcpListener listener;
  std::vector<model::MatchingOutput> player_results(kPlayers);
  std::vector<std::thread> threads;
  threads.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    threads.emplace_back([&, i] {
      std::unique_ptr<wire::Link> link =
          wire::tcp_connect("127.0.0.1", listener.port(), 5000ms);
      const std::vector<graph::Vertex> owned =
          service::shard_vertices(g.num_vertices(), kPlayers, i);
      player_results[i] = service::play_adaptive(*link, g, owned, protocol,
                                                 coins, 5000ms);
    });
  }
  std::vector<std::unique_ptr<wire::Link>> links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    std::unique_ptr<wire::Link> link = listener.accept(5000ms);
    ASSERT_NE(link, nullptr);
    links.push_back(std::move(link));
  }
  const service::AdaptiveServeResult<model::MatchingOutput> served =
      service::serve_adaptive(links, protocol, g.num_vertices(), coins,
                              5000ms);
  for (std::thread& t : threads) t.join();

  const auto simulated = model::run_adaptive(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.max_bits, simulated.comm.max_bits);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
  EXPECT_EQ(served.broadcast_bits, simulated.broadcast_bits);
  ASSERT_EQ(served.by_round.size(), simulated.by_round.size());
  for (std::size_t r = 0; r < served.by_round.size(); ++r) {
    EXPECT_EQ(served.by_round[r].total_bits,
              simulated.by_round[r].total_bits);
  }
  for (const model::MatchingOutput& result : player_results) {
    EXPECT_EQ(result, simulated.output);
  }

  // Connection reuse across adaptive rounds: the protocol ran multiple
  // rounds, yet each player dialed exactly once (and the listener
  // accepted exactly once per player).
  if (obs::metrics_enabled()) {
    EXPECT_EQ(obs::counter("wire.tcp.connects").value() - connects_before,
              kPlayers);
    EXPECT_EQ(obs::counter("wire.tcp.accepts").value() - accepts_before,
              kPlayers);
  }
  obs::set_metrics_enabled(metrics_were_enabled);
}

TEST(RefereeService, RejectsCorruptFramesAndFinishesFromRetransmission) {
  // Corrupt-frame injection (acceptance criteria): the referee must
  // reject the damaged frame, keep the session alive, and complete the
  // round once a clean copy arrives.
  const graph::Graph g = test_graph(12, 4, 0.3);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);
  const std::uint32_t proto = wire::protocol_id(protocol.name());

  LoopbackCluster cluster = make_cluster(1);
  const std::vector<graph::Vertex> all =
      service::shard_vertices(g.num_vertices(), 1, 0);

  // Build the honest batch, then flip a byte in the middle before
  // sending — everything from the damaged frame on is dropped.
  std::vector<std::uint8_t> batch;
  for (const graph::Vertex v : all) {
    const model::VertexView view{g.num_vertices(), v, g.neighbors(v),
                                 &coins};
    util::BitWriter w;
    protocol.encode(view, w);
    (void)service::append_sketch_frame(batch, proto, v, 0,
                                       util::BitString(w));
  }
  std::vector<std::uint8_t> corrupt = batch;
  corrupt[corrupt.size() / 2] ^= 0x41;
  ASSERT_TRUE(cluster.players[0]->send(corrupt));
  // Retransmit the clean batch (duplicates of already-accepted vertices
  // are themselves rejected, missing ones are filled in).
  ASSERT_TRUE(cluster.players[0]->send(batch));

  const auto served = service::serve_protocol(
      cluster.referee, protocol, g.num_vertices(), coins, 2000ms);
  const auto simulated = model::run_protocol(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.comm.total_bits, simulated.comm.total_bits);
  EXPECT_GT(served.uplink.rejected_frames, 0u);
}

TEST(RefereeService, WrongProtocolAndBogusVerticesAreRejected) {
  const graph::Graph g = test_graph(10, 5, 0.3);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);
  const std::uint32_t right = wire::protocol_id(protocol.name());
  const std::uint32_t wrong = wire::protocol_id("someone-else");

  LoopbackCluster cluster = make_cluster(1);
  util::BitWriter junk;
  junk.put_bits(0xABCD, 16);
  const util::BitString junk_bits(junk);

  std::vector<std::uint8_t> bad;
  (void)service::append_sketch_frame(bad, wrong, 0, 0, junk_bits);
  (void)service::append_sketch_frame(bad, right, 10'000, 0, junk_bits);
  (void)service::append_sketch_frame(bad, right, 3, 7, junk_bits);  // round
  ASSERT_TRUE(cluster.players[0]->send(bad));

  const std::vector<graph::Vertex> all =
      service::shard_vertices(g.num_vertices(), 1, 0);
  (void)service::send_sketches(*cluster.players[0], g, all, protocol,
                               coins);

  const auto served = service::serve_protocol(
      cluster.referee, protocol, g.num_vertices(), coins, 2000ms);
  const auto simulated = model::run_protocol(g, protocol, coins);
  EXPECT_EQ(served.output, simulated.output);
  EXPECT_EQ(served.uplink.rejected_frames, 3u);
  EXPECT_EQ(served.uplink.payload_bits, simulated.comm.total_bits);
}

TEST(RefereeService, MissingPlayerIsACleanDeadlineError) {
  const graph::Graph g = test_graph(8, 6, 0.3);
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(kCoinSeed);

  LoopbackCluster cluster = make_cluster(2);
  // Player 0 reports only vertex 0; player 1 never shows up.
  const graph::Vertex v0[] = {0};
  (void)service::send_sketches(*cluster.players[0], g, v0, protocol, coins);

  EXPECT_THROW((void)service::serve_protocol(cluster.referee, protocol,
                                             g.num_vertices(), coins, 150ms),
               service::ServiceError);
}

}  // namespace
}  // namespace ds
