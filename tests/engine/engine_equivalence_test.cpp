// Engine-equivalence regression suite (ISSUE 5 satellite 1): the round
// engine must reproduce the seed-era execution paths bit for bit.
//
// The golden values below were captured from the SEED tree (commit
// d83392a, before src/engine/ existed) by running the then-current
// model::run_protocol / model::run_adaptive on fixed instances and
// hashing the serialized sketches and outputs with FNV-1a 64.  Every
// path that now delegates to engine::run_rounds — the simulated runner,
// the adaptive runner, the audited runner, and the loopback referee
// service — must still produce exactly these CommStats, sketch bits and
// outputs, at 1, 4 and hardware_concurrency threads, with and without a
// SketchArena.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "audit/audited_runner.h"
#include "engine/arena.h"
#include "graph/generators.h"
#include "graph/weighted.h"
#include "model/adaptive.h"
#include "model/runner.h"
#include "parallel/thread_pool.h"
#include "protocols/bridge_finding.h"
#include "protocols/budgeted_two_round.h"
#include "protocols/coloring.h"
#include "protocols/luby_bcc.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampling_zoo.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "protocols/two_round_matching.h"
#include "protocols/two_round_mis.h"
#include "protocols/zoo.h"
#include "service/output_codec.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"

namespace ds {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// FNV-1a 64 over serialized bits — the exact scheme the goldens were
// captured with: fold bit_count, then each storage word, bytes LSB first.

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t hash_bits(std::uint64_t h, const util::BitString& s) {
  h = fnv1a(h, s.bit_count());
  for (std::uint64_t w : s.words()) h = fnv1a(h, w);
  return h;
}

std::uint64_t hash_sketches(std::span<const util::BitString> sketches) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const util::BitString& s : sketches) h = hash_bits(h, s);
  return h;
}

template <typename Output>
std::uint64_t hash_output(const Output& out) {
  util::BitWriter w;
  service::OutputCodec<Output>::encode(out, w);
  const util::BitString bits(w);
  return hash_bits(0xcbf29ce484222325ull, bits);
}

// ---------------------------------------------------------------------------
// Seed-era goldens.

struct OneRoundGolden {
  const char* label;
  std::uint64_t coin_seed;
  std::size_t max_bits;
  std::size_t total_bits;
  std::size_t num_players;
  std::uint64_t sketch_hash;
  std::uint64_t output_hash;
};

struct AdaptiveGolden {
  const char* label;
  std::uint64_t coin_seed;
  std::size_t max_bits;
  std::size_t total_bits;
  std::size_t num_players;
  std::size_t broadcast_bits;
  std::uint64_t output_hash;
};

graph::Graph one_round_graph() {
  util::Rng rng(7);
  return graph::gnp(26, 0.25, rng);
}

graph::Graph adaptive_graph() {
  util::Rng rng(31);
  return graph::gnp(20, 0.3, rng);
}

graph::WeightedGraph weighted_graph() {
  util::Rng rng(51);
  const graph::Graph topo = graph::gnp(16, 0.3, rng);
  std::vector<graph::WeightedEdge> wedges;
  for (const graph::Edge& e : topo.edges()) {
    wedges.push_back(
        {e.u, e.v, static_cast<std::uint32_t>(1 + rng.next_below(3))});
  }
  return graph::WeightedGraph::from_edges(16, wedges);
}

std::vector<std::size_t> thread_counts() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return {1, 4, hw};
}

// ---------------------------------------------------------------------------
// Per-path checkers.  Each runs one execution path and compares against
// a golden row; SCOPED_TRACE names the protocol on failure.

template <typename Graph, typename Output>
void expect_simulated(const Graph& g,
                      const model::SketchingProtocol<Output>& protocol,
                      const OneRoundGolden& want) {
  SCOPED_TRACE(want.label);
  const model::PublicCoins coins(want.coin_seed);
  for (const std::size_t threads : thread_counts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    model::CommStats comm;
    const std::vector<util::BitString> sketches =
        model::collect_sketches(g, protocol, coins, comm, &pool);
    EXPECT_EQ(hash_sketches(sketches), want.sketch_hash);
    EXPECT_EQ(comm.max_bits, want.max_bits);
    EXPECT_EQ(comm.total_bits, want.total_bits);
    EXPECT_EQ(comm.num_players, want.num_players);

    // Full run, without and (twice, to reach steady state) with an arena.
    const auto plain = model::run_protocol(g, protocol, coins, &pool);
    EXPECT_EQ(plain.comm.max_bits, want.max_bits);
    EXPECT_EQ(plain.comm.total_bits, want.total_bits);
    EXPECT_EQ(plain.comm.num_players, want.num_players);
    EXPECT_EQ(hash_output(plain.output), want.output_hash);

    engine::SketchArena arena;
    for (int trial = 0; trial < 2; ++trial) {
      const auto pooled =
          model::run_protocol(g, protocol, coins, &pool, &arena);
      EXPECT_EQ(pooled.comm.total_bits, want.total_bits);
      EXPECT_EQ(pooled.comm.max_bits, want.max_bits);
      EXPECT_EQ(hash_output(pooled.output), want.output_hash);
      EXPECT_TRUE(pooled.output == plain.output);
    }
  }
}

template <typename Graph, typename Output>
void expect_audited(const Graph& g,
                    const model::SketchingProtocol<Output>& protocol,
                    const OneRoundGolden& want) {
  SCOPED_TRACE(want.label);
  const audit::AuditedRunner runner(want.coin_seed);
  const auto run = runner.run(g, protocol);
  EXPECT_EQ(run.comm.max_bits, want.max_bits);
  EXPECT_EQ(run.comm.total_bits, want.total_bits);
  EXPECT_EQ(run.comm.num_players, want.num_players);
  EXPECT_EQ(hash_output(run.output), want.output_hash);
  EXPECT_GE(run.report.players_audited, want.num_players);
}

/// Loopback service path: kPlayers client threads shard the vertices and
/// the served CommStats/output must match the simulated golden exactly.
template <typename Output>
void expect_served(const graph::Graph& g,
                   const model::SketchingProtocol<Output>& protocol,
                   const OneRoundGolden& want) {
  SCOPED_TRACE(want.label);
  const model::PublicCoins coins(want.coin_seed);
  constexpr std::size_t kPlayers = 3;
  std::vector<std::unique_ptr<wire::Link>> referee_links;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    referee_links.push_back(std::move(pair.referee_side));
    player_links.push_back(std::move(pair.player_side));
  }
  std::vector<std::thread> clients;
  clients.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_protocol(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const auto served = service::serve_protocol(
      referee_links, protocol, g.num_vertices(), coins, 5000ms);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(served.comm.max_bits, want.max_bits);
  EXPECT_EQ(served.comm.total_bits, want.total_bits);
  EXPECT_EQ(served.comm.num_players, want.num_players);
  EXPECT_EQ(served.uplink.payload_bits, want.total_bits);
  EXPECT_EQ(hash_output(served.output), want.output_hash);
}

template <typename Output>
void expect_adaptive(const graph::Graph& g,
                     const model::AdaptiveProtocol<Output>& protocol,
                     const AdaptiveGolden& want) {
  SCOPED_TRACE(want.label);
  const model::PublicCoins coins(want.coin_seed);
  for (const std::size_t threads : thread_counts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::ThreadPool pool(threads);
    const auto plain = model::run_adaptive(g, protocol, coins, &pool);
    EXPECT_EQ(plain.comm.max_bits, want.max_bits);
    EXPECT_EQ(plain.comm.total_bits, want.total_bits);
    EXPECT_EQ(plain.comm.num_players, want.num_players);
    EXPECT_EQ(plain.broadcast_bits, want.broadcast_bits);
    EXPECT_EQ(hash_output(plain.output), want.output_hash);

    engine::SketchArena arena;
    for (int trial = 0; trial < 2; ++trial) {
      const auto pooled =
          model::run_adaptive(g, protocol, coins, &pool, &arena);
      EXPECT_EQ(pooled.comm.total_bits, want.total_bits);
      EXPECT_EQ(pooled.broadcast_bits, want.broadcast_bits);
      EXPECT_EQ(hash_output(pooled.output), want.output_hash);
      EXPECT_TRUE(pooled.output == plain.output);
    }
  }

  // Audited path: same engine loop with the audit source.
  const audit::AuditedRunner runner(want.coin_seed);
  const auto audited = runner.run_adaptive(g, protocol);
  EXPECT_EQ(audited.result.comm.max_bits, want.max_bits);
  EXPECT_EQ(audited.result.comm.total_bits, want.total_bits);
  EXPECT_EQ(audited.result.broadcast_bits, want.broadcast_bits);
  EXPECT_EQ(hash_output(audited.result.output), want.output_hash);
  EXPECT_GE(audited.report.players_audited, want.num_players);
}

/// Loopback service path for an adaptive protocol.
template <typename Output>
void expect_served_adaptive(const graph::Graph& g,
                            const model::AdaptiveProtocol<Output>& protocol,
                            const AdaptiveGolden& want) {
  SCOPED_TRACE(want.label);
  const model::PublicCoins coins(want.coin_seed);
  constexpr std::size_t kPlayers = 2;
  std::vector<std::unique_ptr<wire::Link>> referee_links;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    referee_links.push_back(std::move(pair.referee_side));
    player_links.push_back(std::move(pair.player_side));
  }
  std::vector<std::thread> clients;
  clients.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_adaptive(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const auto served = service::serve_adaptive(
      referee_links, protocol, g.num_vertices(), coins, 5000ms);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(served.comm.max_bits, want.max_bits);
  EXPECT_EQ(served.comm.total_bits, want.total_bits);
  EXPECT_EQ(served.comm.num_players, want.num_players);
  EXPECT_EQ(served.broadcast_bits, want.broadcast_bits);
  EXPECT_EQ(hash_output(served.output), want.output_hash);
}

// ---------------------------------------------------------------------------
// The goldens, verbatim from the seed capture.

constexpr OneRoundGolden kSpanningForest{
    "agm-spanning-forest", 101, 16368, 425568, 26,
    0x1fc4b36ce33afc8cull, 0xfa0d45ff1746b3b3ull};
constexpr OneRoundGolden kTrivialMm{
    "trivial-mm", 102, 26, 676, 26,
    0x6d1a4c848c8ccc58ull, 0x857456af94ae553bull};
constexpr OneRoundGolden kTrivialMis{
    "trivial-mis", 103, 26, 676, 26,
    0x6d1a4c848c8ccc58ull, 0xa05dcb31ecfb75d9ull};
constexpr OneRoundGolden kBudgetedMatching{
    "budgeted-matching", 104, 62, 800, 26,
    0x21bb70fd305c4d28ull, 0x78a8a02e502c8173ull};
constexpr OneRoundGolden kBridgeFinding{
    "bridge-finding", 106, 89, 2265, 26,
    0x61bfa501fdc2f7e6ull, 0x47a591be264574a5ull};
constexpr OneRoundGolden kConnectivity{
    "agm-connectivity", 109, 16368, 425568, 26,
    0xfd63a501ff83e8d7ull, 0x89629fadf36d1224ull};
constexpr OneRoundGolden kKConnectivity{
    "k-connectivity", 110, 32736, 851136, 26,
    0x0909da33043c5627ull, 0x11973d5a4443a966ull};
constexpr OneRoundGolden kPaletteColoring{
    "palette-coloring", 111, 62, 776, 26,
    0xefe17119c708c370ull, 0xb286a9270af3eab6ull};
constexpr OneRoundGolden kWeightedMst{
    "mst-weight", 401, 40176, 642816, 16,
    0x7eb04706c79d6a76ull, 0xf95c743cbf5b8273ull};

constexpr AdaptiveGolden kTwoRoundMatching{
    "two-round-matching", 201, 26, 520, 20, 20, 0xf20026a1a4610a79ull};
constexpr AdaptiveGolden kTwoRoundMis{
    "two-round-mis", 202, 44, 185, 20, 20, 0xf2eed4f3d42dd857ull};
constexpr AdaptiveGolden kBudgetedTwoRound{
    "budgeted-two-round", 203, 48, 724, 20, 20, 0xec1d3a8892b81946ull};
constexpr AdaptiveGolden kLubyBcc{
    "luby-bcc", 204, 28, 560, 20, 540, 0xf9a6b2c0cf04b042ull};

// ---------------------------------------------------------------------------

TEST(EngineEquivalence, SimulatedRunnerMatchesSeedGoldens) {
  const graph::Graph g = one_round_graph();
  expect_simulated(g, protocols::AgmSpanningForest{}, kSpanningForest);
  expect_simulated(g, protocols::TrivialMaximalMatching{}, kTrivialMm);
  expect_simulated(g, protocols::TrivialMis{}, kTrivialMis);
  expect_simulated(g, protocols::BudgetedMatching{64}, kBudgetedMatching);
  expect_simulated(g, protocols::BridgeFinding{4}, kBridgeFinding);
  expect_simulated(g, protocols::AgmConnectivity{}, kConnectivity);
  expect_simulated(g, protocols::KConnectivityCertificate{2}, kKConnectivity);
  expect_simulated(g, protocols::PaletteSparsificationColoring{16, 6},
                   kPaletteColoring);
}

TEST(EngineEquivalence, WeightedRunnerMatchesSeedGolden) {
  const graph::WeightedGraph wg = weighted_graph();
  expect_simulated(wg, protocols::MstWeight{3}, kWeightedMst);
  expect_audited(wg, protocols::MstWeight{3}, kWeightedMst);
}

TEST(EngineEquivalence, AuditedRunnerMatchesSeedGoldens) {
  const graph::Graph g = one_round_graph();
  expect_audited(g, protocols::AgmSpanningForest{}, kSpanningForest);
  expect_audited(g, protocols::TrivialMis{}, kTrivialMis);
  expect_audited(g, protocols::BudgetedMatching{64}, kBudgetedMatching);
  expect_audited(g, protocols::KConnectivityCertificate{2}, kKConnectivity);
}

TEST(EngineEquivalence, LoopbackServiceMatchesSeedGoldens) {
  const graph::Graph g = one_round_graph();
  expect_served(g, protocols::AgmSpanningForest{}, kSpanningForest);
  expect_served(g, protocols::TrivialMaximalMatching{}, kTrivialMm);
  expect_served(g, protocols::BridgeFinding{4}, kBridgeFinding);
}

TEST(EngineEquivalence, AdaptiveRunnerMatchesSeedGoldens) {
  const graph::Graph g = adaptive_graph();
  expect_adaptive(g, protocols::TwoRoundMatching{4, 8}, kTwoRoundMatching);
  expect_adaptive(g, protocols::TwoRoundMis{0.3, 8}, kTwoRoundMis);
  expect_adaptive(g, protocols::BudgetedTwoRoundMatching{48, 48},
                  kBudgetedTwoRound);
  expect_adaptive(g, protocols::make_luby_bcc(g.num_vertices()), kLubyBcc);
}

TEST(EngineEquivalence, LoopbackAdaptiveServiceMatchesSeedGoldens) {
  const graph::Graph g = adaptive_graph();
  expect_served_adaptive(g, protocols::TwoRoundMatching{4, 8},
                         kTwoRoundMatching);
  expect_served_adaptive(g, protocols::TwoRoundMis{0.3, 8}, kTwoRoundMis);
}

/// An arena handed fewer slots than vertices must still be safe: prepare
/// grows it, and results stay identical to the arena-free run.
TEST(EngineEquivalence, ArenaReuseAcrossDifferentProtocols) {
  const graph::Graph g = one_round_graph();
  engine::SketchArena arena;
  const model::PublicCoins coins_a(kSpanningForest.coin_seed);
  const model::PublicCoins coins_b(kTrivialMis.coin_seed);
  // Interleave two protocols through ONE arena: buffers pooled from one
  // protocol's sketches are recycled into the other's encodes.
  for (int trial = 0; trial < 3; ++trial) {
    const auto a = model::run_protocol(g, protocols::AgmSpanningForest{},
                                       coins_a, nullptr, &arena);
    EXPECT_EQ(hash_output(a.output), kSpanningForest.output_hash);
    const auto b = model::run_protocol(g, protocols::TrivialMis{}, coins_b,
                                       nullptr, &arena);
    EXPECT_EQ(hash_output(b.output), kTrivialMis.output_hash);
  }
}

}  // namespace
}  // namespace ds
