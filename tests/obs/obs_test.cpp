// src/obs contract tests: gate semantics, counter/histogram arithmetic,
// registry identity, snapshot/JSON export, span recording, and — run
// under TSan in CI — concurrent updates from many threads and from the
// thread pool's instrumentation.
//
// obs state is process-global, so every test pins the gates it needs and
// calls obs::reset() up front rather than assuming a fresh registry.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "parallel/thread_pool.h"

namespace ds {
namespace {

/// Pin the gates for one test and restore defaults afterwards.  Skips
/// the test body when the library was compiled out
/// (DISTSKETCH_OBS_DISABLED): the setters are no-ops there, and that IS
/// the contract being honored.
class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(false);
    obs::reset();
    if (!obs::metrics_enabled()) {
      GTEST_SKIP() << "observability compiled out (DISTSKETCH_OBS=OFF)";
    }
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
  }
};

using ObsCounter = ObsFixture;
using ObsHistogram = ObsFixture;
using ObsRegistry = ObsFixture;
using ObsSnapshot = ObsFixture;
using ObsSpan = ObsFixture;
using ObsConcurrency = ObsFixture;
using ObsPool = ObsFixture;

TEST_F(ObsCounter, AddAndIncrementAccumulate) {
  obs::Counter& c = obs::counter("test.counter.basic");
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsCounter, DisabledGateDropsUpdates) {
  obs::Counter& c = obs::counter("test.counter.gated");
  obs::set_metrics_enabled(false);
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  obs::set_metrics_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsHistogram, TracksCountSumMinMax) {
  obs::Histogram& h = obs::histogram("test.hist.basic");
  h.record(5);
  h.record(100);
  h.record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 108u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
}

TEST_F(ObsHistogram, EmptyHistogramReadsZero) {
  obs::Histogram& h = obs::histogram("test.hist.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile_bound(0.5), 0u);
}

TEST_F(ObsHistogram, BucketsAreLog2ByBitWidth) {
  obs::Histogram& h = obs::histogram("test.hist.buckets");
  h.record(0);   // bit_width 0 -> bucket 0
  h.record(1);   // bit_width 1 -> bucket 1
  h.record(7);   // bit_width 3 -> bucket 3
  h.record(8);   // bit_width 4 -> bucket 4
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST_F(ObsHistogram, QuantileBoundIsBucketUpperBound) {
  obs::Histogram& h = obs::histogram("test.hist.quantile");
  for (int i = 0; i < 99; ++i) h.record(3);     // bucket 2, bound 3
  h.record(1000);                               // bucket 10, bound 1023
  EXPECT_EQ(h.quantile_bound(0.50), 3u);
  EXPECT_EQ(h.quantile_bound(1.0), 1023u);
}

TEST_F(ObsHistogram, ExtremeValuesLandInDefinedBuckets) {
  // Value 0 has bit_width 0 -> bucket 0 (a defined bucket, not a crash
  // or an underflow); values >= 2^63 clamp into the top bucket.
  obs::Histogram& h = obs::histogram("test.hist.extremes");
  h.record(0);
  h.record(std::uint64_t{1} << 63);
  h.record(UINT64_MAX);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(obs::kHistogramBuckets - 1), 2u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // Every recorded value landed in exactly one bucket.
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    total += h.bucket(b);
  }
  EXPECT_EQ(total, h.count());
}

TEST_F(ObsHistogram, TopBucketQuantileBoundIsMaxRepresentable) {
  // The top bucket is a clamp for everything >= 2^63, so its reported
  // upper bound must be UINT64_MAX — (1 << 63) - 1 would understate the
  // range actually covered.  Regression for the quantile/snapshot bound.
  obs::Histogram& h = obs::histogram("test.hist.topbucket");
  h.record(UINT64_MAX);
  h.record(UINT64_MAX - 1);
  EXPECT_EQ(h.quantile_bound(0.5), UINT64_MAX);
  EXPECT_EQ(h.quantile_bound(1.0), UINT64_MAX);
}

TEST_F(ObsRegistry, SameNameSameInstrument) {
  obs::Counter& a = obs::counter("test.registry.shared");
  obs::Counter& b = obs::counter("test.registry.shared");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = obs::histogram("test.registry.shared_hist");
  obs::Histogram& hb = obs::histogram("test.registry.shared_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(ObsRegistry, ResetZeroesWithoutInvalidatingReferences) {
  obs::Counter& c = obs::counter("test.registry.reset");
  obs::Histogram& h = obs::histogram("test.registry.reset_hist");
  c.add(9);
  h.record(9);
  obs::reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(2);  // the cached reference still feeds the registry
  EXPECT_EQ(obs::counter("test.registry.reset").value(), 2u);
}

TEST_F(ObsSnapshot, CarriesCountersAndHistograms) {
  obs::counter("test.snapshot.c").add(5);
  obs::histogram("test.snapshot.h").record(17);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.metrics_on);

  bool saw_counter = false;
  for (const obs::CounterView& c : snap.counters) {
    if (c.name == "test.snapshot.c") {
      saw_counter = true;
      EXPECT_EQ(c.value, 5u);
    }
  }
  EXPECT_TRUE(saw_counter);

  bool saw_hist = false;
  for (const obs::HistogramView& h : snap.histograms) {
    if (h.name == "test.snapshot.h") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 17u);
      ASSERT_EQ(h.buckets.size(), 1u);
      EXPECT_EQ(h.buckets[0].first, 31u);  // bit_width(17)=5 -> bound 2^5-1
      EXPECT_EQ(h.buckets[0].second, 1u);
    }
  }
  EXPECT_TRUE(saw_hist);
}

TEST_F(ObsSnapshot, JsonNamesTheInstruments) {
  obs::counter("test.json.counter").add(3);
  obs::histogram("test.json.hist").record(12);
  const std::string json = obs::snapshot_json();
  EXPECT_NE(json.find("\"metrics_enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST_F(ObsSnapshot, SummaryLineListsNonzeroCountersOnly) {
  obs::counter("test.summary.hot").add(4);
  (void)obs::counter("test.summary.cold");  // registered, stays zero
  const std::string line = obs::summary_line();
  EXPECT_NE(line.find("test.summary.hot=4"), std::string::npos);
  EXPECT_EQ(line.find("test.summary.cold"), std::string::npos);
}

TEST_F(ObsSpan, RecordsDurationIntoHistogram) {
  obs::Histogram& h = obs::histogram("test.span.us");
  {
    const obs::ScopedSpan span("test.span", &h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(ObsSpan, TracingCapturesRecentSpans) {
  obs::set_trace_enabled(true);
  {
    const obs::ScopedSpan span("test.span.traced");
  }
  const obs::Snapshot snap = obs::snapshot();
  bool saw_event = false;
  for (const obs::SpanEvent& e : snap.recent_spans) {
    saw_event |= e.name == "test.span.traced";
  }
  EXPECT_TRUE(saw_event);
  bool saw_aggregate = false;
  for (const obs::SpanView& s : snap.spans) {
    if (s.name == "test.span.traced") {
      saw_aggregate = true;
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(saw_aggregate);
}

TEST_F(ObsSpan, BothGatesOffRecordsNothing) {
  obs::set_metrics_enabled(false);
  obs::Histogram& h = obs::histogram("test.span.off");
  {
    const obs::ScopedSpan span("test.span.off", &h);
  }
  obs::set_metrics_enabled(true);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(obs::snapshot().recent_spans.empty());
}

TEST_F(ObsConcurrency, CountersAreExactUnderContention) {
  obs::Counter& c = obs::counter("test.concurrent.counter");
  obs::Histogram& h = obs::histogram("test.concurrent.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.record(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsConcurrency, TracedSpansFromManyThreadsStayBounded) {
  obs::set_trace_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        const obs::ScopedSpan span("test.concurrent.span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_LE(snap.recent_spans.size(), 256u);  // the ring stays bounded
  for (const obs::SpanView& s : snap.spans) {
    if (s.name == "test.concurrent.span") {
      EXPECT_EQ(s.count, 800u);
    }
  }
}

TEST_F(ObsPool, PoolCountersAdvanceAndSplitByLane) {
  parallel::ThreadPool pool(4);
  obs::Counter& chunks = obs::counter("parallel.chunks");
  obs::Counter& submitter = obs::counter("parallel.submitter_chunks");
  obs::Counter& workers = obs::counter("parallel.worker_chunks");
  obs::Counter& jobs = obs::counter("parallel.jobs");

  std::vector<int> out(1000, 0);
  pool.parallel_for(0, out.size(),
                    [&](std::size_t i) { out[i] = static_cast<int>(i); });

  EXPECT_EQ(jobs.value(), 1u);
  EXPECT_EQ(chunks.value(), parallel::ThreadPool::chunk_count(out.size()));
  // Every chunk is claimed by exactly one lane; the split must add up.
  EXPECT_EQ(submitter.value() + workers.value(), chunks.value());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

TEST_F(ObsPool, SerialPathCountsInlineLoops) {
  parallel::ThreadPool pool(1);
  obs::Counter& inline_loops = obs::counter("parallel.inline_loops");
  obs::Counter& jobs = obs::counter("parallel.jobs");
  int sum = 0;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
  EXPECT_EQ(inline_loops.value(), 1u);
  EXPECT_EQ(jobs.value(), 0u);  // never entered the queued path
}

TEST_F(ObsPool, MetricsDoNotPerturbReduction) {
  // The determinism contract with instrumentation live: metrics on and
  // off produce identical reductions at identical chunking.
  const auto run = [](parallel::ThreadPool& pool) {
    return pool.parallel_reduce(
        std::size_t{0}, std::size_t{777}, std::uint64_t{0},
        [](std::uint64_t& acc, std::size_t i) {
          acc = acc * 31 + i;  // order-sensitive fold
        },
        [](std::uint64_t& into, std::uint64_t from) {
          into = into * 17 + from;
        });
  };
  parallel::ThreadPool pool(4);
  const std::uint64_t with_metrics = run(pool);
  obs::set_metrics_enabled(false);
  const std::uint64_t without_metrics = run(pool);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(with_metrics, without_metrics);
}

}  // namespace
}  // namespace ds
