// Reader failure modes (docs/STREAMING.md): every malformed input maps
// to its own distinguished ReadStatus, the reader latches the first
// failure, and none of the cases reach undefined behavior (this suite
// runs under asan/ubsan in the stream-smoke CI job).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "streamio/binary_stream.h"
#include "streamio/format.h"

namespace ds::streamio {
namespace {

using stream::EdgeUpdate;

class StreamFormat : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path =
        (dir / ("ds_format_test_" + name + ".stream")).string();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  /// Read the file's raw bytes.
  static std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void dump(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// A well-formed 3-update file to corrupt.
  std::string write_valid(const std::string& name) {
    const std::string path = temp_path(name);
    BinaryStreamWriter writer(path, /*n=*/10, /*seed=*/42);
    writer.append(EdgeUpdate{{1, 2}, true});
    writer.append(EdgeUpdate{{2, 3}, true});
    writer.append(EdgeUpdate{{1, 2}, false});
    EXPECT_TRUE(writer.finish());
    return path;
  }

  std::vector<std::string> paths_;
};

TEST_F(StreamFormat, RecordEncodeDecodeRoundTrip) {
  const EdgeUpdate original{{123456, 987654}, false};
  std::uint8_t bytes[kRecordBytes];
  encode_record(original, bytes);
  EdgeUpdate decoded;
  ASSERT_EQ(decode_record(bytes, 1 << 20, decoded), ReadStatus::kOk);
  EXPECT_EQ(decoded.edge, original.edge);
  EXPECT_EQ(decoded.insert, original.insert);
}

TEST_F(StreamFormat, WriterReaderRoundTrip) {
  const std::string path = write_valid("roundtrip");
  BinaryStreamReader reader(path);
  ASSERT_EQ(reader.status(), ReadStatus::kOk);
  EXPECT_EQ(reader.header().n, 10u);
  EXPECT_EQ(reader.header().updates, 3u);
  EXPECT_EQ(reader.header().seed, 42u);

  std::vector<EdgeUpdate> got(8);
  ASSERT_EQ(reader.next_batch(got), 3u);
  EXPECT_EQ(got[0].edge, (graph::Edge{1, 2}));
  EXPECT_TRUE(got[0].insert);
  EXPECT_FALSE(got[2].insert);
  EXPECT_EQ(reader.status(), ReadStatus::kEnd);
  EXPECT_EQ(reader.next_batch(got), 0u);
  EXPECT_EQ(reader.bytes_read(), kHeaderBytes + 3 * kRecordBytes);
}

TEST_F(StreamFormat, BatchGranularityDoesNotChangeContents) {
  const std::string path = write_valid("batching");
  std::vector<EdgeUpdate> all;
  BinaryStreamReader one(path);
  std::vector<EdgeUpdate> buf(1);
  while (one.next_batch(buf) == 1) all.push_back(buf[0]);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(one.status(), ReadStatus::kEnd);
}

TEST_F(StreamFormat, BadMagicIsDistinguished) {
  const std::string path = write_valid("bad_magic");
  auto bytes = slurp(path);
  bytes[0] = 'X';
  dump(path, bytes);
  BinaryStreamReader reader(path);
  EXPECT_EQ(reader.status(), ReadStatus::kBadMagic);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
}

TEST_F(StreamFormat, BadVersionIsDistinguished) {
  const std::string path = write_valid("bad_version");
  auto bytes = slurp(path);
  bytes[4] = 99;
  dump(path, bytes);
  BinaryStreamReader reader(path);
  EXPECT_EQ(reader.status(), ReadStatus::kBadVersion);
}

TEST_F(StreamFormat, TruncatedHeaderIsDistinguished) {
  const std::string path = write_valid("short_header");
  auto bytes = slurp(path);
  bytes.resize(kHeaderBytes / 2);
  dump(path, bytes);
  BinaryStreamReader reader(path);
  EXPECT_EQ(reader.status(), ReadStatus::kTruncatedHeader);
}

TEST_F(StreamFormat, ShortReadMidRecordIsTruncation) {
  const std::string path = write_valid("mid_record");
  auto bytes = slurp(path);
  bytes.resize(kHeaderBytes + kRecordBytes + 4);  // record 2 cut short
  dump(path, bytes);
  BinaryStreamReader reader(path);
  ASSERT_EQ(reader.status(), ReadStatus::kOk);
  std::vector<EdgeUpdate> buf(8);
  EXPECT_EQ(reader.next_batch(buf), 1u);  // record 1 still delivered
  EXPECT_EQ(reader.status(), ReadStatus::kTruncatedRecord);
}

TEST_F(StreamFormat, MissingRecordsAtBoundaryIsTruncation) {
  const std::string path = write_valid("boundary");
  auto bytes = slurp(path);
  bytes.resize(kHeaderBytes + 2 * kRecordBytes);  // 3 declared, 2 present
  dump(path, bytes);
  BinaryStreamReader reader(path);
  std::vector<EdgeUpdate> buf(8);
  EXPECT_EQ(reader.next_batch(buf), 2u);
  EXPECT_EQ(reader.status(), ReadStatus::kTruncatedRecord);
}

TEST_F(StreamFormat, OutOfRangeVertexIsDistinguished) {
  const std::string path = temp_path("bad_vertex");
  {
    BinaryStreamWriter writer(path, /*n=*/10);
    writer.append(EdgeUpdate{{1, 2}, true});
    ASSERT_TRUE(writer.finish());
  }
  auto bytes = slurp(path);
  bytes[kHeaderBytes + 5] = 77;  // v's low byte -> 77 >= n
  dump(path, bytes);
  BinaryStreamReader reader(path);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
  EXPECT_EQ(reader.status(), ReadStatus::kBadVertex);
}

TEST_F(StreamFormat, SelfLoopIsBadVertex) {
  const std::string path = temp_path("self_loop");
  {
    BinaryStreamWriter writer(path, /*n=*/10);
    writer.append(EdgeUpdate{{1, 2}, true});
    ASSERT_TRUE(writer.finish());
  }
  auto bytes = slurp(path);
  bytes[kHeaderBytes + 5] = 1;  // v := 1 == u
  dump(path, bytes);
  BinaryStreamReader reader(path);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
  EXPECT_EQ(reader.status(), ReadStatus::kBadVertex);
}

TEST_F(StreamFormat, BadOpByteIsDistinguished) {
  const std::string path = write_valid("bad_op");
  auto bytes = slurp(path);
  bytes[kHeaderBytes] = 7;  // first record's op
  dump(path, bytes);
  BinaryStreamReader reader(path);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
  EXPECT_EQ(reader.status(), ReadStatus::kBadOp);
}

TEST_F(StreamFormat, ErrorIsLatchedAcrossCalls) {
  const std::string path = write_valid("latch");
  auto bytes = slurp(path);
  bytes[kHeaderBytes] = 7;
  dump(path, bytes);
  BinaryStreamReader reader(path);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
  EXPECT_EQ(reader.next_batch(buf), 0u);
  EXPECT_EQ(reader.status(), ReadStatus::kBadOp);
}

TEST_F(StreamFormat, MissingFileIsIoError) {
  BinaryStreamReader reader("/nonexistent/ds_stream_missing.stream");
  EXPECT_EQ(reader.status(), ReadStatus::kIoError);
  std::vector<EdgeUpdate> buf(4);
  EXPECT_EQ(reader.next_batch(buf), 0u);
}

TEST_F(StreamFormat, HeaderWithTinyNIsBadHeader) {
  const std::string path = write_valid("tiny_n");
  auto bytes = slurp(path);
  for (std::size_t i = 0; i < 8; ++i) bytes[8 + i] = 0;
  bytes[8] = 1;  // n = 1
  dump(path, bytes);
  BinaryStreamReader reader(path);
  EXPECT_EQ(reader.status(), ReadStatus::kBadHeader);
}

TEST_F(StreamFormat, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(ReadStatus::kOk), "ok");
  EXPECT_STREQ(to_string(ReadStatus::kEnd), "end");
  EXPECT_STREQ(to_string(ReadStatus::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(ReadStatus::kTruncatedRecord), "truncated-record");
  EXPECT_TRUE(is_error(ReadStatus::kBadVertex));
  EXPECT_FALSE(is_error(ReadStatus::kEnd));
}

}  // namespace
}  // namespace ds::streamio
