// The stream-ingestion equivalence audit (the engine-equivalence idiom
// of docs/PARALLELISM.md applied to src/streamio/): pooled sharded
// ingestion must land bit-identical sketch state — same state_hash,
// same query answers — as the serial DynamicConnectivity::apply loop,
// at every thread count, for every batch size, with metrics on or off.
#include <gtest/gtest.h>

#include <vector>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "streamio/generator_stream.h"
#include "streamio/ingestor.h"

namespace ds::streamio {
namespace {

using graph::Graph;
using graph::Vertex;
using stream::EdgeUpdate;

constexpr std::uint64_t kSketchSeed = 2024;

std::vector<EdgeUpdate> sample_updates(Vertex n, std::uint64_t edges,
                                       std::uint64_t seed) {
  GeneratorConfig config;
  config.family = Family::kRmat;
  config.n = n;
  config.edges = edges;
  config.delete_fraction = 0.25;
  config.seed = seed;
  GeneratorStream source(config);
  std::vector<EdgeUpdate> all;
  std::vector<EdgeUpdate> buf(4096);
  for (;;) {
    const std::size_t got = source.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return all;
}

stream::DynamicConnectivity serial_reference(
    Vertex n, const std::vector<EdgeUpdate>& updates) {
  stream::DynamicConnectivity state(n, kSketchSeed);
  for (const EdgeUpdate& u : updates) state.apply(u);
  return state;
}

TEST(StreamIngestEquivalence, ShardPartitionMatchesThreadPoolChunks) {
  for (const Vertex n : {Vertex{2}, Vertex{17}, Vertex{64}, Vertex{65},
                         Vertex{1000}, Vertex{1u << 20}}) {
    const std::size_t shards = ingest_shard_count(n);
    EXPECT_EQ(shards, parallel::ThreadPool::chunk_count(n));
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [lo, hi] =
          parallel::ThreadPool::chunk_bounds(n, shards, s);
      EXPECT_EQ(ingest_shard_of(n, shards, static_cast<Vertex>(lo)), s);
      EXPECT_EQ(ingest_shard_of(n, shards, static_cast<Vertex>(hi - 1)),
                s);
    }
  }
}

TEST(StreamIngestEquivalence, PooledMatchesSerialAtEveryThreadCount) {
  constexpr Vertex kN = 300;
  const auto updates = sample_updates(kN, 2000, /*seed=*/7);
  const auto reference = serial_reference(kN, updates);
  const std::uint64_t want_hash = reference.state_hash();
  const std::uint32_t want_components = reference.query_components();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    parallel::configured_threads()}) {
    parallel::ThreadPool pool(threads);
    stream::DynamicConnectivity state(kN, kSketchSeed);
    MemorySource source(kN, updates);
    const IngestReport report =
        ingest(source, state, {.batch_updates = 256, .pool = &pool});
    EXPECT_EQ(report.status, ReadStatus::kEnd);
    EXPECT_EQ(report.updates, updates.size());
    EXPECT_EQ(state.state_hash(), want_hash) << threads << " threads";
    EXPECT_EQ(state.query_components(), want_components)
        << threads << " threads";
  }
}

TEST(StreamIngestEquivalence, BatchSizeDoesNotChangeFinalState) {
  constexpr Vertex kN = 150;
  const auto updates = sample_updates(kN, 1200, /*seed=*/8);
  const std::uint64_t want = serial_reference(kN, updates).state_hash();
  parallel::ThreadPool pool(3);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{37},
                                  std::size_t{512}, std::size_t{100000}}) {
    stream::DynamicConnectivity state(kN, kSketchSeed);
    MemorySource source(kN, updates);
    const IngestReport report =
        ingest(source, state, {.batch_updates = batch, .pool = &pool});
    EXPECT_EQ(report.updates, updates.size());
    EXPECT_EQ(state.state_hash(), want) << "batch=" << batch;
  }
}

TEST(StreamIngestEquivalence, SerialIngestOptionMatchesDirectApply) {
  constexpr Vertex kN = 100;
  const auto updates = sample_updates(kN, 900, /*seed=*/9);
  stream::DynamicConnectivity state(kN, kSketchSeed);
  MemorySource source(kN, updates);
  const IngestReport report = ingest(source, state, {.serial = true});
  EXPECT_EQ(report.updates, updates.size());
  EXPECT_EQ(state.state_hash(),
            serial_reference(kN, updates).state_hash());
  EXPECT_EQ(report.inserts + report.deletes, report.updates);
}

TEST(StreamIngestEquivalence, InterleavedQueriesObserveTheLiveState) {
  // Build a path insert-only so every prefix has a known component
  // count, and snapshot every 64 updates.
  constexpr Vertex kN = 256;
  std::vector<EdgeUpdate> updates;
  for (Vertex v = 0; v + 1 < kN; ++v) {
    updates.push_back({{v, static_cast<Vertex>(v + 1)}, true});
  }
  stream::DynamicConnectivity state(kN, kSketchSeed);
  MemorySource source(kN, updates);
  const IngestReport report =
      ingest(source, state,
             {.batch_updates = 64, .query_interval = 64, .serial = true,
              .async_queries = true});
  ASSERT_FALSE(report.snapshots.empty());
  for (const QuerySnapshot& snap : report.snapshots) {
    // After k path-edge inserts the graph has n - k components.
    EXPECT_EQ(snap.components, kN - snap.after_updates)
        << "at " << snap.after_updates;
  }
  // Snapshots never perturb the live state.
  EXPECT_EQ(state.state_hash(),
            serial_reference(kN, updates).state_hash());
}

TEST(StreamIngestEquivalence, SyncAndAsyncSnapshotsAgree) {
  constexpr Vertex kN = 128;
  const auto updates = sample_updates(kN, 600, /*seed=*/10);
  auto run = [&](bool async) {
    stream::DynamicConnectivity state(kN, kSketchSeed);
    MemorySource source(kN, updates);
    return ingest(source, state,
                  {.batch_updates = 100, .query_interval = 200,
                   .serial = true, .async_queries = async});
  };
  const IngestReport sync_report = run(false);
  const IngestReport async_report = run(true);
  ASSERT_EQ(sync_report.snapshots.size(), async_report.snapshots.size());
  for (std::size_t i = 0; i < sync_report.snapshots.size(); ++i) {
    EXPECT_EQ(sync_report.snapshots[i].after_updates,
              async_report.snapshots[i].after_updates);
    EXPECT_EQ(sync_report.snapshots[i].components,
              async_report.snapshots[i].components);
  }
}

TEST(StreamIngestEquivalence, MetricsOffIngestionIsBitIdentical) {
  // Satellite of the obs design rule: instruments must never feed back
  // into results (docs/OBSERVABILITY.md).
  constexpr Vertex kN = 120;
  const auto updates = sample_updates(kN, 800, /*seed=*/11);
  parallel::ThreadPool pool(2);
  auto run = [&] {
    stream::DynamicConnectivity state(kN, kSketchSeed);
    MemorySource source(kN, updates);
    (void)ingest(source, state,
                 {.batch_updates = 128, .query_interval = 300,
                  .pool = &pool});
    return state.state_hash();
  };
  obs::set_metrics_enabled(false);
  const std::uint64_t off = run();
  obs::set_metrics_enabled(true);
  const std::uint64_t on = run();
  obs::set_metrics_enabled(false);
  EXPECT_EQ(off, on);
}

TEST(StreamIngestEquivalence, CountersAccountExactly) {
  constexpr Vertex kN = 90;
  const auto updates = sample_updates(kN, 500, /*seed=*/12);
  obs::set_metrics_enabled(true);
  obs::reset();
  stream::DynamicConnectivity state(kN, kSketchSeed);
  MemorySource source(kN, updates);
  const IngestReport report =
      ingest(source, state, {.batch_updates = 64, .serial = true});
  obs::set_metrics_enabled(false);
  EXPECT_EQ(obs::counter("stream.ingest.updates").value(), report.updates);
  EXPECT_EQ(obs::counter("stream.ingest.inserts").value(), report.inserts);
  EXPECT_EQ(obs::counter("stream.ingest.deletes").value(), report.deletes);
  EXPECT_EQ(obs::counter("stream.ingest.batches").value(), report.batches);
  obs::reset();
}

TEST(StreamIngestEquivalence, RoundsKnobShrinksStateButKeepsEquality) {
  constexpr Vertex kN = 200;
  const auto updates = sample_updates(kN, 1000, /*seed=*/13);
  stream::DynamicConnectivity full(kN, kSketchSeed);
  stream::DynamicConnectivity compact(kN, kSketchSeed, /*rounds=*/2);
  EXPECT_LT(compact.state_bits(), full.state_bits());
  EXPECT_EQ(compact.rounds(), 2u);

  parallel::ThreadPool pool(4);
  stream::DynamicConnectivity compact_pooled(kN, kSketchSeed, 2);
  {
    MemorySource source(kN, updates);
    (void)ingest(source, compact_pooled, {.pool = &pool});
  }
  for (const EdgeUpdate& u : updates) compact.apply(u);
  EXPECT_EQ(compact_pooled.state_hash(), compact.state_hash());
  EXPECT_EQ(compact_pooled.query_components(), compact.query_components());
}

}  // namespace
}  // namespace ds::streamio
