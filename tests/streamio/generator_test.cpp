// GeneratorStream: the derive_seed block-keyed determinism contract —
// the update sequence is a pure function of the config, independent of
// consumer batch size — plus turnstile well-formedness (every delete
// cancels a real prior insert) and constant-memory generation at
// n >= 10^6.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "streamio/generator_stream.h"

namespace ds::streamio {
namespace {

using stream::EdgeUpdate;

std::vector<EdgeUpdate> drain(GeneratorStream& source,
                              std::size_t batch_size) {
  std::vector<EdgeUpdate> all;
  std::vector<EdgeUpdate> buf(batch_size);
  for (;;) {
    const std::size_t got = source.next_batch(buf);
    if (got == 0) break;
    all.insert(all.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return all;
}

bool same_updates(const std::vector<EdgeUpdate>& a,
                  const std::vector<EdgeUpdate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].edge != b[i].edge || a[i].insert != b[i].insert) return false;
  }
  return true;
}

GeneratorConfig small_config(Family family) {
  GeneratorConfig config;
  config.family = family;
  config.n = 500;
  config.edges = 3000;
  config.delete_fraction = 0.3;
  config.seed = 11;
  return config;
}

TEST(GeneratorStream, BatchSizeDoesNotChangeTheSequence) {
  for (const Family family : {Family::kRmat, Family::kChungLu}) {
    GeneratorStream a(small_config(family));
    GeneratorStream b(small_config(family));
    GeneratorStream c(small_config(family));
    const auto small = drain(a, 13);
    const auto large = drain(b, 4096);
    const auto single = drain(c, 1);
    EXPECT_TRUE(same_updates(small, large)) << to_string(family);
    EXPECT_TRUE(same_updates(small, single)) << to_string(family);
    EXPECT_EQ(a.status(), ReadStatus::kEnd);
  }
}

TEST(GeneratorStream, RewindReplaysByteIdentically) {
  GeneratorStream source(small_config(Family::kRmat));
  const auto first = drain(source, 100);
  source.rewind();
  const auto second = drain(source, 257);
  EXPECT_TRUE(same_updates(first, second));
}

TEST(GeneratorStream, SeedChangesTheSequence) {
  GeneratorConfig other = small_config(Family::kRmat);
  other.seed = 12;
  GeneratorStream a(small_config(Family::kRmat));
  GeneratorStream b(other);
  EXPECT_FALSE(same_updates(drain(a, 64), drain(b, 64)));
}

TEST(GeneratorStream, EveryDeleteCancelsAPriorInsert) {
  for (const Family family : {Family::kRmat, Family::kChungLu}) {
    GeneratorStream source(small_config(family));
    const auto updates = drain(source, 512);
    std::map<std::pair<graph::Vertex, graph::Vertex>, std::int64_t> mult;
    for (const EdgeUpdate& u : updates) {
      const graph::Edge e = u.edge.normalized();
      auto& count = mult[{e.u, e.v}];
      count += u.insert ? 1 : -1;
      // A delete may never drive an edge's multiplicity negative: the
      // generator only deletes edges it inserted earlier in the block.
      EXPECT_GE(count, 0) << to_string(family);
    }
  }
}

TEST(GeneratorStream, InsertCountMatchesConfiguredEdges) {
  GeneratorStream source(small_config(Family::kRmat));
  const auto updates = drain(source, 999);
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  for (const EdgeUpdate& u : updates) (u.insert ? inserts : deletes) += 1;
  EXPECT_EQ(inserts, 3000u);
  // delete_fraction = 0.3 with 3000 draws: nowhere near the extremes.
  EXPECT_GT(deletes, 600u);
  EXPECT_LT(deletes, 1500u);
  EXPECT_EQ(source.updates_emitted(), updates.size());
}

TEST(GeneratorStream, ZeroDeleteFractionKeepsEdgeSequence) {
  // The edge draws must be identical with and without deletions (the
  // deletion plan is drawn after all edge draws in each block).
  GeneratorConfig with = small_config(Family::kRmat);
  GeneratorConfig without = small_config(Family::kRmat);
  without.delete_fraction = 0.0;
  GeneratorStream a(with);
  GeneratorStream b(without);
  std::vector<graph::Edge> inserts_a;
  for (const EdgeUpdate& u : drain(a, 128)) {
    if (u.insert) inserts_a.push_back(u.edge);
  }
  std::vector<graph::Edge> inserts_b;
  for (const EdgeUpdate& u : drain(b, 128)) inserts_b.push_back(u.edge);
  EXPECT_EQ(inserts_a, inserts_b);
}

TEST(GeneratorStream, MillionVertexGenerationStaysStreaming) {
  // n >= 10^6 with a bounded pull: generation cost is per-block, so
  // pulling 200k updates must not materialize anything n-sized beyond
  // the Chung-Lu weight table.
  GeneratorConfig config;
  config.family = Family::kRmat;
  config.n = 1u << 20;
  config.edges = 200000;
  config.delete_fraction = 0.1;
  config.seed = 3;
  GeneratorStream source(config);
  std::vector<EdgeUpdate> buf(1 << 14);
  std::uint64_t seen = 0;
  for (;;) {
    const std::size_t got = source.next_batch(buf);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_LT(buf[i].edge.u, config.n);
      ASSERT_LT(buf[i].edge.v, config.n);
      ASSERT_NE(buf[i].edge.u, buf[i].edge.v);
    }
    seen += got;
  }
  EXPECT_GE(seen, config.edges);
  EXPECT_EQ(source.status(), ReadStatus::kEnd);
}

TEST(GeneratorStream, WriteThenReadBackEqualsDirectDrain) {
  const GeneratorConfig config = small_config(Family::kChungLu);
  GeneratorStream source(config);
  const auto direct = drain(source, 300);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "ds_generator_roundtrip.stream").string();
  {
    BinaryStreamWriter writer(path, config.n, config.seed);
    source.rewind();
    std::vector<EdgeUpdate> buf(1024);
    for (;;) {
      const std::size_t got = source.next_batch(buf);
      if (got == 0) break;
      writer.append(std::span<const EdgeUpdate>(buf.data(), got));
    }
    ASSERT_TRUE(writer.finish());
  }
  BinaryStreamReader reader(path);
  EXPECT_EQ(reader.header().updates, direct.size());
  std::vector<EdgeUpdate> buf(777);
  std::vector<EdgeUpdate> from_file;
  for (;;) {
    const std::size_t got = reader.next_batch(buf);
    if (got == 0) break;
    from_file.insert(from_file.end(), buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  EXPECT_TRUE(same_updates(direct, from_file));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ds::streamio
