// The stream::scrambled_updates / DynamicConnectivity round-trip
// property: a scrambled update sequence written through
// BinaryStreamWriter and read back through BinaryStreamReader yields
// bit-identical sketch state (state_hash) and the target graph's
// component count — including the all-deletions-to-empty edge case the
// turnstile model exists for.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "streamio/binary_stream.h"
#include "streamio/ingestor.h"

namespace ds::streamio {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;
using stream::EdgeUpdate;

std::string temp_stream_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("ds_roundtrip_" + name + ".stream")).string();
}

/// Apply updates directly (the in-memory reference path).
stream::DynamicConnectivity direct_state(
    Vertex n, std::uint64_t seed, const std::vector<EdgeUpdate>& updates) {
  stream::DynamicConnectivity state(n, seed);
  for (const EdgeUpdate& u : updates) state.apply(u);
  return state;
}

TEST(StreamRoundTrip, ScrambledStreamSurvivesFileRoundTrip) {
  constexpr Vertex kN = 30;
  constexpr std::uint64_t kSketchSeed = 77;
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    util::Rng rng(util::derive_seed(900, trial));
    const Graph target = graph::gnp(kN, 0.12, rng);
    const auto updates =
        stream::scrambled_updates(target, /*spurious_pairs=*/25, rng);

    const std::string path =
        temp_stream_path("scrambled_" + std::to_string(trial));
    {
      BinaryStreamWriter writer(path, kN, kSketchSeed);
      writer.append(updates);
      ASSERT_TRUE(writer.finish());
    }

    BinaryStreamReader reader(path);
    ASSERT_EQ(reader.status(), ReadStatus::kOk);
    stream::DynamicConnectivity from_file(kN, kSketchSeed);
    const IngestReport report =
        ingest(reader, from_file, {.batch_updates = 7, .serial = true});
    EXPECT_EQ(report.status, ReadStatus::kEnd);
    EXPECT_EQ(report.updates, updates.size());

    const auto reference = direct_state(kN, kSketchSeed, updates);
    EXPECT_EQ(from_file.state_hash(), reference.state_hash())
        << "trial " << trial;
    EXPECT_EQ(from_file.query_components(),
              graph::connected_components(target).count)
        << "trial " << trial;
    std::remove(path.c_str());
  }
}

TEST(StreamRoundTrip, AllDeletionsToEmptyDecodesAsEmpty) {
  constexpr Vertex kN = 24;
  constexpr std::uint64_t kSketchSeed = 5;
  util::Rng rng(41);
  const Graph target = graph::gnp(kN, 0.2, rng);

  // Insert everything, then delete everything (in a different order).
  std::vector<EdgeUpdate> updates;
  for (const Edge& e : target.edges()) updates.push_back({e, true});
  std::vector<Edge> doomed = target.edges();
  rng.shuffle(std::span<Edge>(doomed));
  for (const Edge& e : doomed) updates.push_back({e, false});

  const std::string path = temp_stream_path("all_deleted");
  {
    BinaryStreamWriter writer(path, kN, kSketchSeed);
    writer.append(updates);
    ASSERT_TRUE(writer.finish());
  }
  BinaryStreamReader reader(path);
  stream::DynamicConnectivity state(kN, kSketchSeed);
  const IngestReport report = ingest(reader, state, {.serial = true});
  EXPECT_EQ(report.status, ReadStatus::kEnd);
  EXPECT_EQ(report.inserts, target.num_edges());
  EXPECT_EQ(report.deletes, target.num_edges());

  // The empty graph: n components, and the sketch state must equal the
  // never-touched state bit for bit (linearity: +1 then -1 cancels).
  EXPECT_EQ(state.query_components(), kN);
  EXPECT_EQ(state.state_hash(),
            stream::DynamicConnectivity(kN, kSketchSeed).state_hash());
  std::remove(path.c_str());
}

TEST(StreamRoundTrip, PooledIngestMatchesSerialOnFileStream) {
  constexpr Vertex kN = 40;
  constexpr std::uint64_t kSketchSeed = 19;
  util::Rng rng(52);
  const Graph target = graph::gnp(kN, 0.1, rng);
  const auto updates =
      stream::scrambled_updates(target, /*spurious_pairs=*/40, rng);
  const std::string path = temp_stream_path("pooled");
  {
    BinaryStreamWriter writer(path, kN, kSketchSeed);
    writer.append(updates);
    ASSERT_TRUE(writer.finish());
  }

  stream::DynamicConnectivity serial(kN, kSketchSeed);
  {
    BinaryStreamReader reader(path);
    (void)ingest(reader, serial, {.serial = true});
  }
  parallel::ThreadPool pool(4);
  stream::DynamicConnectivity pooled(kN, kSketchSeed);
  {
    BinaryStreamReader reader(path);
    const IngestReport report =
        ingest(reader, pooled, {.batch_updates = 16, .pool = &pool});
    EXPECT_EQ(report.status, ReadStatus::kEnd);
  }
  EXPECT_EQ(pooled.state_hash(), serial.state_hash());
  EXPECT_EQ(pooled.query_components(),
            graph::connected_components(target).count);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ds::streamio
