// Exercises the adaptive runner beyond two rounds and assorted edge
// cases that no earlier suite touches directly.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "model/adaptive.h"

namespace ds::model {
namespace {

using graph::Graph;
using graph::Vertex;

/// R-round "ping-pong sum": in each round every vertex sends one gamma-
/// coded number; the referee broadcasts the running total; the final
/// output is the grand total.  Checks round sequencing, broadcast
/// visibility, and per-round accounting over >2 rounds.
class PingPongSum final : public AdaptiveProtocol<std::uint64_t> {
 public:
  explicit PingPongSum(unsigned rounds) : rounds_(rounds) {}
  unsigned num_rounds() const override { return rounds_; }

  void encode_round(const VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override {
    // Every player must have seen exactly `round` broadcasts.
    EXPECT_EQ(broadcasts.size(), round);
    std::uint64_t carry = 0;
    if (round > 0) {
      util::BitReader reader(broadcasts[round - 1]);
      carry = reader.get_gamma() - 1;
    }
    // Send id + round + (carry % 7) so later rounds depend on broadcasts.
    out.put_gamma(view.id + round + carry % 7 + 1);
  }

  util::BitString make_broadcast(
      unsigned round, Vertex n,
      std::span<const std::vector<util::BitString>> rounds_so_far,
      const PublicCoins&) const override {
    std::uint64_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      util::BitReader reader(rounds_so_far[round][v]);
      total += reader.get_gamma() - 1;
    }
    util::BitWriter writer;
    writer.put_gamma(total + 1);
    return util::BitString(writer);
  }

  std::uint64_t decode(Vertex n,
                       std::span<const std::vector<util::BitString>> all,
                       std::span<const util::BitString> broadcasts,
                       const PublicCoins&) const override {
    EXPECT_EQ(all.size(), rounds_);
    EXPECT_EQ(broadcasts.size(), rounds_ - 1);
    std::uint64_t total = 0;
    for (const auto& round : all) {
      for (Vertex v = 0; v < n; ++v) {
        util::BitReader reader(round[v]);
        total += reader.get_gamma() - 1;
      }
    }
    return total;
  }

  std::string name() const override { return "ping-pong-sum"; }

 private:
  unsigned rounds_;
};

TEST(AdaptiveMultiRound, FiveRoundsSequenceCorrectly) {
  const Graph g = graph::path(12);
  const PublicCoins coins(1);
  const PingPongSum protocol(5);
  const auto run = run_adaptive(g, protocol, coins);
  EXPECT_EQ(run.by_round.size(), 5u);
  EXPECT_GT(run.broadcast_bits, 0u);

  // Verify against a direct recomputation.
  std::uint64_t expected = 0;
  std::uint64_t carry = 0;
  for (unsigned round = 0; round < 5; ++round) {
    std::uint64_t round_total = 0;
    for (Vertex v = 0; v < 12; ++v) {
      round_total += v + round + carry % 7;
    }
    expected += round_total;
    carry = round_total;
  }
  EXPECT_EQ(run.output, expected);
}

TEST(AdaptiveMultiRound, PerPlayerTotalsAreSummedAcrossRounds) {
  const Graph g = graph::cycle(8);
  const PublicCoins coins(2);
  const PingPongSum protocol(3);
  const auto run = run_adaptive(g, protocol, coins);
  std::size_t per_round_total = 0;
  for (const auto& round : run.by_round) per_round_total += round.total_bits;
  EXPECT_EQ(run.comm.total_bits, per_round_total);
  EXPECT_EQ(run.comm.num_players, 8u);
}

TEST(AdaptiveMultiRound, SingleRoundDegeneratesToSimultaneous) {
  const Graph g = graph::path(5);
  const PublicCoins coins(3);
  const PingPongSum protocol(1);
  const auto run = run_adaptive(g, protocol, coins);
  EXPECT_EQ(run.broadcast_bits, 0u);  // no broadcast after the last round
  EXPECT_EQ(run.by_round.size(), 1u);
  EXPECT_EQ(run.output, 0u + 1 + 2 + 3 + 4);
}

}  // namespace
}  // namespace ds::model
