// The public-vs-private-coin separation ([BMRT14] flavor), executable:
// shared-hash protocols break, locally-random protocols survive.
#include "model/private_coins.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"

namespace ds::model {
namespace {

using graph::Graph;

TEST(PrivateCoins, AgmCollapsesWithoutSharedRandomness) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.2, rng);
  const auto result = run_protocol_private_coins(
      g, protocols::AgmSpanningForest{}, /*seed_base=*/7);
  EXPECT_FALSE(graph::is_spanning_forest(g, result.output));
}

TEST(PrivateCoins, BridgeFindingSurvives) {
  // Sampling randomness is local to each player; the incidence sum is
  // deterministic; the referee uses no coins. Private coins change
  // nothing.
  util::Rng rng(2);
  int successes = 0;
  constexpr int kReps = 15;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const auto [g, bridge] = graph::two_clusters_with_bridge(60, 0.3, rng);
    const auto result = run_protocol_private_coins(
        g, protocols::BridgeFinding{10}, 100 + rep);
    successes += result.output.normalized() == bridge.normalized();
  }
  EXPECT_GE(successes, kReps - 2);
}

TEST(PrivateCoins, DeterministicProtocolsUnaffected) {
  // The trivial bitmap protocol uses coins only for referee tie-breaking;
  // output remains a maximal matching either way.
  util::Rng rng(3);
  const Graph g = graph::gnp(30, 0.2, rng);
  const auto result =
      run_protocol_private_coins(g, protocols::TrivialMaximalMatching{}, 9);
  EXPECT_TRUE(graph::is_maximal_matching(g, result.output));
}

TEST(PrivateCoins, CostAccountingIdenticalToPublicRuns) {
  util::Rng rng(4);
  const Graph g = graph::gnp(30, 0.2, rng);
  const PublicCoins coins(5);
  const auto pub = run_protocol(g, protocols::TrivialMaximalMatching{}, coins);
  const auto priv =
      run_protocol_private_coins(g, protocols::TrivialMaximalMatching{}, 5);
  EXPECT_EQ(pub.comm.max_bits, priv.comm.max_bits);
  EXPECT_EQ(pub.comm.total_bits, priv.comm.total_bits);
}

}  // namespace
}  // namespace ds::model
