#include "model/edge_partition.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/hopcroft_karp.h"
#include "graph/matching.h"
#include "protocols/edge_partition_matching.h"

namespace ds::model {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

TEST(EdgePartition, RandomPartitionIsExactCover) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.2, rng);
  const auto inst = partition_edges_randomly(g, 5, rng);
  ASSERT_EQ(inst.player_edges.size(), 5u);
  std::set<std::pair<Vertex, Vertex>> seen;
  std::size_t total = 0;
  for (const auto& edges : inst.player_edges) {
    for (const Edge& e : edges) {
      const Edge ne = e.normalized();
      EXPECT_TRUE(seen.insert({ne.u, ne.v}).second) << "edge duplicated";
      EXPECT_TRUE(g.has_edge(e.u, e.v));
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(EdgePartition, RunnerChargesPerPlayer) {
  util::Rng rng(2);
  const Graph g = graph::gnp(30, 0.2, rng);
  const auto inst = partition_edges_randomly(g, 4, rng);
  const PublicCoins coins(3);
  const protocols::EdgePartitionMatching protocol(200);
  const auto run = run_edge_partitioned(inst, protocol, coins);
  EXPECT_EQ(run.comm.num_players, 4u);
  EXPECT_LE(run.comm.max_bits, 200u);
}

TEST(EdgePartitionMatching, OutputIsValidMatching) {
  util::Rng rng(4);
  for (std::size_t budget : {0ULL, 50ULL, 500ULL, 100000ULL}) {
    const Graph g = graph::gnp(40, 0.15, rng);
    const auto inst = partition_edges_randomly(g, 6, rng);
    const PublicCoins coins(5 + budget);
    const protocols::EdgePartitionMatching protocol(budget);
    const auto run = run_edge_partitioned(inst, protocol, coins);
    EXPECT_TRUE(graph::is_valid_matching(g, run.output));
  }
}

TEST(EdgePartitionMatching, FewPlayersFullBudgetIsHalfDecent) {
  // Merging per-player greedy matchings: each player's local matching is
  // maximal on its share; merged results approximate maximum matching
  // within a modest constant on random bipartite graphs.
  util::Rng rng(6);
  const Graph g = graph::random_bipartite(30, 30, 0.1, rng);
  const auto inst = partition_edges_randomly(g, 3, rng);
  const PublicCoins coins(7);
  const protocols::EdgePartitionMatching protocol(1 << 16);
  const auto run = run_edge_partitioned(inst, protocol, coins);
  const std::size_t maximum = graph::maximum_bipartite_matching(g).size();
  EXPECT_GE(3 * run.output.size(), maximum);
}

TEST(EdgePartitionMatching, NoSharingMeansLocalBlindness) {
  // A path whose edges land with different players: neither player sees
  // the conflict, and with tight budgets the merged result stays small
  // even when the budget would suffice under vertex partitioning (where
  // both endpoints see each edge).  Statistical smoke check.
  util::Rng rng(8);
  std::size_t merged_total = 0, maximum_total = 0;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const Graph g = graph::random_bipartite(25, 25, 0.08, rng);
    const auto inst = partition_edges_randomly(g, 8, rng);
    const PublicCoins coins(9 + rep);
    const protocols::EdgePartitionMatching protocol(15);  // 1 edge/player
    const auto run = run_edge_partitioned(inst, protocol, coins);
    merged_total += run.output.size();
    maximum_total += graph::maximum_bipartite_matching(g).size();
  }
  EXPECT_LT(merged_total, maximum_total / 2);
}

}  // namespace
}  // namespace ds::model
