// Regression for VertexView::weighted() (ISSUE 3 satellite): the old
// definition short-circuited on `neighbors.empty()` and returned true for
// an isolated vertex on an UNWEIGHTED run.  The contract now: a view is
// weighted iff it actually carries per-edge weights, and a degree-zero
// player reports unweighted on every run — its view is identical on
// weighted and unweighted inputs, so the predicate must not distinguish
// them.
#include <gtest/gtest.h>

#include <array>

#include "graph/weighted.h"
#include "model/protocol.h"
#include "model/runner.h"
#include "protocols/zoo.h"

namespace ds {
namespace {

const model::PublicCoins kCoins{17};

TEST(VertexView, IsolatedVertexOnUnweightedRunIsNotWeighted) {
  const model::VertexView view{4, 0, {}, &kCoins};
  EXPECT_FALSE(view.weighted());  // the old code returned true here
  EXPECT_EQ(view.degree(), 0u);
}

TEST(VertexView, IsolatedVertexOnWeightedRunIsNotWeighted) {
  // A weighted run hands an isolated vertex empty weights: its view is
  // bit-identical to the unweighted case and must classify identically.
  const model::VertexView view{4, 0, {}, &kCoins, {}};
  EXPECT_FALSE(view.weighted());
}

TEST(VertexView, VertexWithWeightsIsWeighted) {
  const std::array<graph::Vertex, 2> neighbors{1, 2};
  const std::array<std::uint32_t, 2> weights{5, 9};
  const model::VertexView view{4, 0, neighbors, &kCoins, weights};
  EXPECT_TRUE(view.weighted());
  EXPECT_EQ(view.degree(), 2u);
}

TEST(VertexView, VertexWithNeighborsButNoWeightsIsUnweighted) {
  const std::array<graph::Vertex, 2> neighbors{1, 2};
  const model::VertexView view{4, 0, neighbors, &kCoins};
  EXPECT_FALSE(view.weighted());
}

// End-to-end: the weighted runner still feeds weights through views with
// the corrected predicate (MstWeight reads them positionally and the
// graph below has an isolated vertex to hit the degree-zero path).
TEST(VertexView, WeightedRunnerStillDeliversWeights) {
  const std::array<graph::WeightedEdge, 3> edges{{{0, 1, 2}, {1, 2, 1},
                                                  {0, 2, 3}}};
  // Vertex 3 is isolated.
  const graph::WeightedGraph g = graph::WeightedGraph::from_edges(4, edges);
  const protocols::MstWeight protocol{3};
  const auto result = model::run_protocol(g, protocol, kCoins);
  EXPECT_EQ(result.output, 3u);  // MSF = edges of weight 2 + 1
}

}  // namespace
}  // namespace ds
