// Failure injection: referees must handle truncated, empty, and garbage
// sketches gracefully (return *something*, never crash or read out of
// bounds).  The paper's error model permits arbitrary wrong outputs; the
// implementation must therefore be total.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/budgeted.h"
#include "protocols/coloring.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"

namespace ds::model {
namespace {

using graph::Graph;
using graph::Vertex;

/// Truncate every sketch to at most `bits` bits.
std::vector<util::BitString> truncate_all(
    std::span<const util::BitString> sketches, std::size_t bits) {
  std::vector<util::BitString> out;
  for (const util::BitString& s : sketches) {
    util::BitWriter w;
    util::BitReader r(s);
    std::size_t take = std::min(bits, s.bit_count());
    while (take >= 64) {
      w.put_bits(r.get_bits(64), 64);
      take -= 64;
    }
    if (take > 0) w.put_bits(r.get_bits(static_cast<unsigned>(take)),
                             static_cast<unsigned>(take));
    out.emplace_back(w);
  }
  return out;
}

/// Replace every sketch with `bits` random bits.
std::vector<util::BitString> garbage_all(std::size_t count, std::size_t bits,
                                         util::Rng& rng) {
  std::vector<util::BitString> out;
  for (std::size_t i = 0; i < count; ++i) {
    util::BitWriter w;
    for (std::size_t b = 0; b < bits; b += 64) {
      w.put_bits(rng.next(), static_cast<unsigned>(std::min<std::size_t>(
                                 64, bits - b)));
    }
    out.emplace_back(w);
  }
  return out;
}

class Robustness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Robustness, BudgetedMatchingSurvivesTruncation) {
  util::Rng rng(1);
  const Graph g = graph::gnp(30, 0.2, rng);
  const PublicCoins coins(2);
  const protocols::BudgetedMatching protocol(128);
  CommStats comm;
  const auto sketches = collect_sketches(g, protocol, coins, comm);
  const auto truncated = truncate_all(sketches, GetParam());
  const auto output = protocol.decode(30, truncated, coins);
  // Whatever came out, scoring it must be well-defined.
  (void)graph::is_matching(output, 30);
}

TEST_P(Robustness, BudgetedMisSurvivesGarbage) {
  util::Rng rng(3);
  const PublicCoins coins(4);
  const protocols::BudgetedMis protocol(64);
  const auto garbage = garbage_all(25, GetParam(), rng);
  const auto output = protocol.decode(25, garbage, coins);
  for (Vertex v : output) EXPECT_LT(v, 25u);
}

TEST_P(Robustness, ReportedGraphParserBoundsChecks) {
  util::Rng rng(5);
  const auto garbage = garbage_all(20, GetParam(), rng);
  const Graph decoded = protocols::decode_reported_graph(20, garbage);
  EXPECT_EQ(decoded.num_vertices(), 20u);
  for (const graph::Edge& e : decoded.edges()) {
    EXPECT_LT(e.u, 20u);
    EXPECT_LT(e.v, 20u);
    EXPECT_NE(e.u, e.v);
  }
}

INSTANTIATE_TEST_SUITE_P(TruncationLevels, Robustness,
                         ::testing::Values(0, 1, 3, 7, 17, 33, 64, 129));

TEST(Robustness, TrivialDecodeWithEmptySketches) {
  const PublicCoins coins(6);
  const protocols::TrivialMaximalMatching protocol;
  std::vector<util::BitString> empties(10);
  const auto output = protocol.decode(10, empties, coins);
  EXPECT_TRUE(output.empty());  // empty bitmap reads as all-zero rows
}

TEST(Robustness, AgmDecodeWithZeroSketches) {
  // All-zero AGM states decode as an empty graph: no forest edges.
  const PublicCoins coins(7);
  const protocols::AgmSpanningForest protocol;
  util::Rng rng(8);
  const Graph g = graph::gnp(12, 0.3, rng);
  CommStats comm;
  auto sketches = collect_sketches(g, protocol, coins, comm);
  // Zero out: same length, all zero bits.
  std::vector<util::BitString> zeroed;
  for (const auto& s : sketches) {
    util::BitWriter w;
    for (std::size_t b = 0; b < s.bit_count(); b += 64) {
      w.put_bits(0, static_cast<unsigned>(
                        std::min<std::size_t>(64, s.bit_count() - b)));
    }
    zeroed.emplace_back(w);
  }
  const auto output = protocol.decode(12, zeroed, coins);
  EXPECT_TRUE(output.empty());
}

TEST(Robustness, ColoringWithGarbageStillInRangeOrUncolored) {
  util::Rng rng(9);
  const PublicCoins coins(10);
  const protocols::PaletteSparsificationColoring protocol(8, 4);
  const auto garbage = garbage_all(15, 50, rng);
  const auto colors = protocol.decode(15, garbage, coins);
  ASSERT_EQ(colors.size(), 15u);
  for (std::uint32_t c : colors) {
    EXPECT_TRUE(c == protocols::kUncolored || c < 8);
  }
}

}  // namespace
}  // namespace ds::model
