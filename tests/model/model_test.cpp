#include "model/runner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "model/adaptive.h"

namespace ds::model {
namespace {

using graph::Graph;
using graph::Vertex;

/// A protocol that just reports its degree; the referee sums them.
/// Exercises the runner plumbing and exact bit accounting.
class DegreeSum final : public SketchingProtocol<std::uint64_t> {
 public:
  void encode(const VertexView& view, util::BitWriter& out) const override {
    out.put_gamma(view.degree() + 1);
  }
  std::uint64_t decode(Vertex n, std::span<const util::BitString> sketches,
                       const PublicCoins&) const override {
    std::uint64_t total = 0;
    for (Vertex v = 0; v < n; ++v) {
      util::BitReader r(sketches[v]);
      total += r.get_gamma() - 1;
    }
    return total;
  }
  std::string name() const override { return "degree-sum"; }
};

TEST(Runner, DegreeSumIsTwiceEdges) {
  util::Rng rng(1);
  const Graph g = graph::gnp(50, 0.1, rng);
  const PublicCoins coins(7);
  const auto result = run_protocol(g, DegreeSum{}, coins);
  EXPECT_EQ(result.output, 2 * g.num_edges());
  EXPECT_EQ(result.comm.num_players, 50u);
}

TEST(Runner, BitAccountingExact) {
  // A 3-vertex path: degrees 1, 2, 1 -> gamma(2)=3 bits, gamma(3)=3 bits.
  const Graph g = graph::path(3);
  const PublicCoins coins(8);
  const auto result = run_protocol(g, DegreeSum{}, coins);
  EXPECT_EQ(result.comm.max_bits, 3u);
  EXPECT_EQ(result.comm.total_bits, 9u);
  EXPECT_NEAR(result.comm.avg_bits(), 3.0, 1e-12);
}

/// View-integrity protocol: asserts the harness hands each player exactly
/// its own sorted neighborhood.
class ViewCheck final : public SketchingProtocol<int> {
 public:
  explicit ViewCheck(const Graph& g) : g_(&g) {}
  void encode(const VertexView& view, util::BitWriter& out) const override {
    EXPECT_EQ(view.n, g_->num_vertices());
    EXPECT_LT(view.id, view.n);
    const auto expected = g_->neighbors(view.id);
    ASSERT_EQ(view.neighbors.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(view.neighbors[i], expected[i]);
    }
    EXPECT_NE(view.coins, nullptr);
    out.put_bit(true);
  }
  int decode(Vertex, std::span<const util::BitString>,
             const PublicCoins&) const override {
    return 0;
  }
  std::string name() const override { return "view-check"; }

 private:
  const Graph* g_;
};

TEST(Runner, ViewsMatchGraph) {
  util::Rng rng(2);
  const Graph g = graph::gnp(25, 0.2, rng);
  const PublicCoins coins(9);
  (void)run_protocol(g, ViewCheck{g}, coins);
}

TEST(PublicCoins, SharedStreamsAgreeAcrossParties) {
  const PublicCoins a(42), b(42);
  util::Rng sa = a.stream(coin_tag(CoinTag::kEdgeSample, 3));
  util::Rng sb = b.stream(coin_tag(CoinTag::kEdgeSample, 3));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sa.next(), sb.next());
}

TEST(PublicCoins, DifferentTagsDiffer) {
  const PublicCoins coins(43);
  util::Rng s1 = coins.stream(coin_tag(CoinTag::kEdgeSample, 1));
  util::Rng s2 = coins.stream(coin_tag(CoinTag::kPalette, 1));
  EXPECT_NE(s1.next(), s2.next());
}

TEST(PublicCoins, SharedHashFunctionsAgree) {
  const PublicCoins a(44), b(44);
  const util::KWiseHash ha = a.hash(99, 2);
  const util::KWiseHash hb = b.hash(99, 2);
  for (std::uint64_t x = 0; x < 50; ++x) EXPECT_EQ(ha(x), hb(x));
}

/// Two-round echo protocol: round 0 sends degree; referee broadcasts the
/// max; round 1 each vertex sends 1 iff its degree equals the max.
class MaxDegreeLocator final : public AdaptiveProtocol<std::vector<Vertex>> {
 public:
  unsigned num_rounds() const override { return 2; }

  void encode_round(const VertexView& view, unsigned round,
                    std::span<const util::BitString> broadcasts,
                    util::BitWriter& out) const override {
    if (round == 0) {
      out.put_gamma(view.degree() + 1);
      return;
    }
    util::BitReader r(broadcasts[0]);
    const std::uint64_t max_deg = r.get_gamma() - 1;
    out.put_bit(view.degree() == max_deg);
  }

  util::BitString make_broadcast(
      unsigned, Vertex n,
      std::span<const std::vector<util::BitString>> rounds,
      const PublicCoins&) const override {
    std::uint64_t max_deg = 0;
    for (Vertex v = 0; v < n; ++v) {
      util::BitReader r(rounds[0][v]);
      max_deg = std::max(max_deg, r.get_gamma() - 1);
    }
    util::BitWriter w;
    w.put_gamma(max_deg + 1);
    return util::BitString(w);
  }

  std::vector<Vertex> decode(Vertex n,
                             std::span<const std::vector<util::BitString>> all,
                             std::span<const util::BitString>,
                             const PublicCoins&) const override {
    std::vector<Vertex> result;
    for (Vertex v = 0; v < n; ++v) {
      util::BitReader r(all[1][v]);
      if (r.get_bit()) result.push_back(v);
    }
    return result;
  }

  std::string name() const override { return "max-degree-locator"; }
};

TEST(Adaptive, TwoRoundMaxDegree) {
  // Star graph: only the center has max degree.
  std::vector<graph::Edge> edges;
  for (Vertex v = 1; v < 10; ++v) edges.push_back({0, v});
  const Graph g = Graph::from_edges(10, edges);
  const PublicCoins coins(10);
  const auto result = run_adaptive(g, MaxDegreeLocator{}, coins);
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(result.output[0], 0u);
  EXPECT_EQ(result.by_round.size(), 2u);
  // Round 1 costs exactly 1 bit per player.
  EXPECT_EQ(result.by_round[1].max_bits, 1u);
  EXPECT_EQ(result.by_round[1].total_bits, 10u);
  EXPECT_GT(result.broadcast_bits, 0u);
  // Per-player totals: round0 gamma + 1 bit.
  EXPECT_EQ(result.comm.num_players, 10u);
  EXPECT_EQ(result.comm.max_bits,
            result.by_round[0].max_bits + result.by_round[1].max_bits);
}

TEST(CommStats, MergeAndRecord) {
  CommStats a;
  a.record(10);
  a.record(20);
  CommStats b;
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.max_bits, 30u);
  EXPECT_EQ(a.total_bits, 60u);
  EXPECT_EQ(a.num_players, 3u);
}

}  // namespace
}  // namespace ds::model
