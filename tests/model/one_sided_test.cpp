// The one-sided vertex-partition model (related work, Section 1.3):
// removing one side's players flips which problems are easy.  The needle
// instance makes it quantitative.
#include "model/one_sided.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/needle.h"

namespace ds::model {
namespace {

using graph::Edge;
using graph::Vertex;

graph::NeedleInstance make_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  return graph::needle_bipartite(/*left=*/20, /*right=*/20, 0.3, rng);
}

TEST(NeedleInstances, GeneratorInvariants) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make_instance(seed);
    ASSERT_TRUE(inst.graph.has_edge(inst.needle.u, inst.needle.v));
    EXPECT_LT(inst.needle.u, inst.left);
    EXPECT_GE(inst.needle.v, inst.left);
    // The needle is the unique degree-1 right vertex.
    std::size_t degree_one = 0;
    for (Vertex r = inst.left; r < inst.graph.num_vertices(); ++r) {
      const auto deg = inst.graph.degree(r);
      if (deg == 1) ++degree_one;
      if (r != inst.needle.v) {
        EXPECT_GE(deg, 2u);
      }
    }
    EXPECT_EQ(degree_one, 1u);
    EXPECT_EQ(inst.graph.degree(inst.needle.v), 1u);
    // Bipartite: no left-left or right-right edges.
    for (const Edge& e : inst.graph.edges()) {
      EXPECT_NE(e.u < inst.left, e.v < inst.left);
    }
  }
}

TEST(NeedleTwoSided, AlwaysSucceedsWithLogBits) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make_instance(seed);
    const PublicCoins coins(seed);
    const protocols::NeedleTwoSided protocol(inst.left);
    const auto run = run_protocol(inst.graph, protocol, coins);
    EXPECT_EQ(run.output.normalized(), inst.needle.normalized());
    // Worst player: one vertex id.
    EXPECT_LE(run.comm.max_bits, util::bit_width_for(inst.graph.num_vertices()));
  }
}

TEST(NeedleOneSided, FailsUnderSmallBudget) {
  std::size_t successes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make_instance(seed);
    const BipartiteInstance bip{inst.graph, inst.left};
    const PublicCoins coins(100 + seed);
    // Budget for ~2 edges per left player; left degrees are ~7.
    const protocols::NeedleOneSided protocol(inst.left, 16);
    const auto run = run_one_sided(bip, protocol, coins);
    successes += run.output.normalized() == inst.needle.normalized();
  }
  EXPECT_LE(successes, 4u);
}

TEST(NeedleOneSided, SucceedsWithFullBudget) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make_instance(seed);
    const BipartiteInstance bip{inst.graph, inst.left};
    const PublicCoins coins(200 + seed);
    const protocols::NeedleOneSided protocol(inst.left, 100000);
    const auto run = run_one_sided(bip, protocol, coins);
    EXPECT_EQ(run.output.normalized(), inst.needle.normalized());
  }
}

TEST(NeedleOneSided, CostAsymmetryVsTwoSided) {
  // Two-sided cost: one vertex id from the needle itself.
  std::size_t two_sided_bits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make_instance(seed);
    const PublicCoins coins(seed);
    const protocols::NeedleTwoSided two(inst.left);
    const auto run = run_protocol(inst.graph, two, coins);
    ASSERT_EQ(run.output.normalized(), inst.needle.normalized());
    two_sided_bits = std::max(two_sided_bits, run.comm.max_bits);
  }

  // One-sided: smallest budget (doubling ladder) that succeeds on >= 8
  // of 10 seeds.
  std::size_t needed = 0;
  for (std::size_t budget = 8; budget <= 1 << 14; budget *= 2) {
    std::size_t successes = 0;
    std::size_t bits = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto inst = make_instance(seed);
      const BipartiteInstance bip{inst.graph, inst.left};
      const PublicCoins coins(700 + seed);
      const protocols::NeedleOneSided one(inst.left, budget);
      const auto run = run_one_sided(bip, one, coins);
      successes += run.output.normalized() == inst.needle.normalized();
      bits = std::max(bits, run.comm.max_bits);
    }
    if (successes >= 8) {
      needed = bits;
      break;
    }
  }
  ASSERT_GT(needed, 0u);
  // Reliable one-sided discovery costs many times the two-sided O(log n).
  EXPECT_GT(needed, 5 * two_sided_bits);
}

TEST(OneSidedRunner, OnlyLeftPlayersCharged) {
  const auto inst = make_instance(3);
  const BipartiteInstance bip{inst.graph, inst.left};
  const PublicCoins coins(9);
  const protocols::NeedleOneSided protocol(inst.left, 64);
  const auto run = run_one_sided(bip, protocol, coins);
  EXPECT_EQ(run.comm.num_players, inst.left);
}

TEST(NeedleProtocols, OneSidedProtocolAlsoRunsTwoSided) {
  // Same protocol through the standard runner: right players emit empty
  // reports, result unchanged in distribution.
  const auto inst = make_instance(5);
  const PublicCoins coins(11);
  const protocols::NeedleOneSided protocol(inst.left, 100000);
  const auto run = run_protocol(inst.graph, protocol, coins);
  EXPECT_EQ(run.output.normalized(), inst.needle.normalized());
}

}  // namespace
}  // namespace ds::model
