// The sharded wire/sim byte-accounting cross-check: everything the
// single-referee audit (wire_audit_test.cpp) asserts, re-proven over a
// two-shard epoll referee — per-player payloads BitString for BitString,
// CommStats bit for bit, adaptive per-round breakdowns included.
//
// This is the audit that keeps the combiner honest: if shard merging
// ever reordered, double-charged, or dropped a payload, one of these
// zoo sweeps would catch the drift against model::collect_sketches /
// model::run_adaptive, whose accounting is the spec.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <thread>

#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/budgeted_two_round.h"
#include "protocols/coloring.h"
#include "protocols/luby_bcc.h"
#include "protocols/needle.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"
#include "protocols/sampling_zoo.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "protocols/two_round_matching.h"
#include "protocols/two_round_mis.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/shard.h"
#include "service/sharded_referee.h"
#include "wire/tcp.h"

namespace ds {
namespace {

using namespace std::chrono_literals;
using graph::Graph;
using graph::Vertex;

constexpr std::size_t kShards = 2;
constexpr std::size_t kPlayers = 3;

Graph test_graph(std::uint64_t seed = 7, Vertex n = 26, double p = 0.25) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

/// kPlayers socketpair connections dealt round-robin onto kShards shard
/// event loops; the player ends stay blocking TcpLinks.
struct ShardedCluster {
  std::vector<std::unique_ptr<service::RefereeShard>> shards;
  std::vector<std::unique_ptr<wire::Link>> players;
};

ShardedCluster make_cluster() {
  ShardedCluster cluster;
  for (std::size_t s = 0; s < kShards; ++s) {
    cluster.shards.push_back(
        std::make_unique<service::RefereeShard>(s, kShards));
  }
  for (std::size_t i = 0; i < kPlayers; ++i) {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    (void)cluster.shards[i % kShards]->adopt_fd(fds[0]);
    cluster.players.push_back(wire::tcp_adopt_fd(fds[1]));
  }
  return cluster;
}

void expect_same_sketches(std::span<const util::BitString> wire_sketches,
                          std::span<const util::BitString> sim_sketches,
                          const std::string& name) {
  ASSERT_EQ(wire_sketches.size(), sim_sketches.size()) << name;
  for (std::size_t v = 0; v < sim_sketches.size(); ++v) {
    EXPECT_EQ(wire_sketches[v].bit_count(), sim_sketches[v].bit_count())
        << name << ": player " << v << " payload length drifted";
    EXPECT_EQ(wire_sketches[v].words(), sim_sketches[v].words())
        << name << ": player " << v << " payload bits drifted";
  }
}

void expect_same_comm(const model::CommStats& wire_comm,
                      const model::CommStats& sim_comm,
                      const std::string& name) {
  EXPECT_EQ(wire_comm.max_bits, sim_comm.max_bits) << name;
  EXPECT_EQ(wire_comm.total_bits, sim_comm.total_bits) << name;
  EXPECT_EQ(wire_comm.num_players, sim_comm.num_players) << name;
}

/// One-round cross-check: players send through blocking links into the
/// shard loops; the ShardedWireSource's combined round must reproduce
/// the simulated collection exactly.  Runs once per drive mode so both
/// the worker-thread and the inline single-thread multiplexer are
/// exercised regardless of what kAuto resolves to on this host.
template <typename Output>
void expect_sharded_equals_sim(
    const Graph& g, const model::SketchingProtocol<Output>& protocol,
    std::uint64_t seed) {
  const model::PublicCoins coins(seed);
  model::CommStats sim_comm;
  const std::vector<util::BitString> sim_sketches =
      model::collect_sketches(g, protocol, coins, sim_comm);

  for (const service::ShardDrive drive :
       {service::ShardDrive::kThreads, service::ShardDrive::kInline}) {
    const std::string name =
        protocol.name() +
        (drive == service::ShardDrive::kThreads ? " [threads]" : " [inline]");
    ShardedCluster cluster = make_cluster();
    for (std::size_t i = 0; i < kPlayers; ++i) {
      (void)service::send_sketches(
          *cluster.players[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins);
    }
    service::ShardedWireSource source(cluster.shards, g.num_vertices(),
                                      wire::protocol_id(protocol.name()),
                                      2000ms, drive);
    const std::vector<util::BitString> collected = source.collect(0, {});

    expect_same_sketches(collected, sim_sketches, name);
    expect_same_comm(service::comm_from_sketches(collected), sim_comm, name);
    EXPECT_EQ(source.uplink().payload_bits, sim_comm.total_bits) << name;
    EXPECT_EQ(source.uplink().rejected_frames, 0u) << name;
    EXPECT_GT(source.uplink().framing_bits, 0u) << name;
  }
}

TEST(ShardAudit, SketchingProtocolZooPayloadsMatchSimulation) {
  const Graph g = test_graph(21);
  expect_sharded_equals_sim(g, protocols::AgmSpanningForest{}, 101);
  expect_sharded_equals_sim(g, protocols::TrivialMaximalMatching{}, 102);
  expect_sharded_equals_sim(g, protocols::TrivialMis{}, 103);
  expect_sharded_equals_sim(g, protocols::BudgetedMatching{64}, 104);
  expect_sharded_equals_sim(g, protocols::BudgetedMis{64}, 105);
  expect_sharded_equals_sim(g, protocols::BridgeFinding{4}, 106);
  expect_sharded_equals_sim(g, protocols::NeedleTwoSided{13}, 107);
  expect_sharded_equals_sim(g, protocols::NeedleOneSided{13, 48}, 108);
  expect_sharded_equals_sim(g, protocols::AgmConnectivity{}, 109);
  expect_sharded_equals_sim(g, protocols::KConnectivityCertificate{2}, 110);
  expect_sharded_equals_sim(
      g, protocols::PaletteSparsificationColoring{16, 6}, 111);
  expect_sharded_equals_sim(g, protocols::EdgeCountEstimate{8}, 112);
  expect_sharded_equals_sim(g, protocols::SampledSubgraph{0.5}, 113);
  expect_sharded_equals_sim(g, protocols::SampledDegeneracy{0.5}, 114);
}

/// Adaptive cross-check: the full serve_adaptive_sharded session
/// (combiner, event-loop broadcasts) against run_adaptive, once per
/// drive mode.
template <typename Output>
void expect_sharded_adaptive_equals_sim(
    const Graph& g, const model::AdaptiveProtocol<Output>& protocol,
    std::uint64_t seed) {
  const model::PublicCoins coins(seed);
  const auto sim = model::run_adaptive(g, protocol, coins);

  for (const service::ShardDrive drive :
       {service::ShardDrive::kThreads, service::ShardDrive::kInline}) {
    const std::string name =
        protocol.name() +
        (drive == service::ShardDrive::kThreads ? " [threads]" : " [inline]");
    ShardedCluster cluster = make_cluster();
    std::vector<std::thread> threads;
    std::vector<Output> player_results(kPlayers);
    threads.reserve(kPlayers);
    for (std::size_t i = 0; i < kPlayers; ++i) {
      threads.emplace_back([&, i] {
        player_results[i] = service::play_adaptive(
            *cluster.players[i], g,
            service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
            coins, 5000ms);
      });
    }
    const service::AdaptiveServeResult<Output> served =
        service::serve_adaptive_sharded(cluster.shards, protocol,
                                        g.num_vertices(), coins, 5000ms,
                                        drive);
    for (std::thread& t : threads) t.join();

    EXPECT_TRUE(served.output == sim.output) << name;
    expect_same_comm(served.comm, sim.comm, name);
    EXPECT_EQ(served.broadcast_bits, sim.broadcast_bits) << name;
    ASSERT_EQ(served.by_round.size(), sim.by_round.size()) << name;
    for (std::size_t r = 0; r < served.by_round.size(); ++r) {
      expect_same_comm(served.by_round[r], sim.by_round[r],
                       name + " round " + std::to_string(r));
    }
    EXPECT_EQ(served.uplink.payload_bits, sim.comm.total_bits) << name;
    for (const Output& result : player_results) {
      EXPECT_TRUE(result == sim.output) << name;
    }
  }
}

TEST(ShardAudit, AdaptiveProtocolPayloadsMatchSimulation) {
  const Graph g = test_graph(31, 20, 0.3);
  expect_sharded_adaptive_equals_sim(g, protocols::TwoRoundMatching{4, 8},
                                     201);
  expect_sharded_adaptive_equals_sim(g, protocols::TwoRoundMis{0.3, 8}, 202);
  expect_sharded_adaptive_equals_sim(
      g, protocols::BudgetedTwoRoundMatching{48, 48}, 203);
  expect_sharded_adaptive_equals_sim(
      g, protocols::make_luby_bcc(g.num_vertices()), 204);
}

}  // namespace
}  // namespace ds
