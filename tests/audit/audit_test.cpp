// The audit layer audited: three deliberately-cheating protocols — one per
// model invariant — must each be caught by AuditedRunner with a diagnostic
// naming the violated invariant, while every honest protocol in
// src/protocols/ and both lower-bound search paths pass unchanged.
#include "audit/audited_runner.h"

#include <gtest/gtest.h>

#include <array>

#include "audit/audited_refined.h"
#include "graph/generators.h"
#include "lowerbound/protocol_search.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/budgeted_two_round.h"
#include "protocols/coloring.h"
#include "protocols/luby_bcc.h"
#include "protocols/needle.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"
#include "protocols/sampling_zoo.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "protocols/two_round_matching.h"
#include "protocols/two_round_mis.h"
#include "protocols/zoo.h"
#include "rs/rs_graph.h"

namespace ds::audit {
namespace {

using graph::Graph;
using graph::Vertex;

Graph test_graph(std::uint64_t seed = 7, Vertex n = 24, double p = 0.2) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

// ---------------------------------------------------------------------------
// Cheating protocol 1: reads past the end of its own adjacency span — in a
// CSR layout that is the next player's row.  Only ever run under the
// audited runner, whose guard canaries make the out-of-row read defined
// (and detectable); in the plain runner this access would be out of bounds.
// ---------------------------------------------------------------------------
class NeighborRowPeeker final
    : public model::SketchingProtocol<model::VertexSetOutput> {
 public:
  void encode(const model::VertexView& view,
              util::BitWriter& out) const override {
    const Vertex beyond = view.neighbors.data()[view.neighbors.size()];
    out.put_bits(beyond, 32);
  }
  [[nodiscard]] model::VertexSetOutput decode(
      Vertex, std::span<const util::BitString>,
      const model::PublicCoins&) const override {
    return {};
  }
  [[nodiscard]] std::string name() const override { return "cheat-peeker"; }
};

// ---------------------------------------------------------------------------
// Cheating protocol 2: draws randomness outside the public coins (a mutable
// call counter standing in for rand()); two runs with identical coins
// produce different messages.
// ---------------------------------------------------------------------------
class HiddenStateEncoder final
    : public model::SketchingProtocol<model::VertexSetOutput> {
 public:
  void encode(const model::VertexView&,
              util::BitWriter& out) const override {
    out.put_bits(calls_++, 32);
  }
  [[nodiscard]] model::VertexSetOutput decode(
      Vertex, std::span<const util::BitString>,
      const model::PublicCoins&) const override {
    return {};
  }
  [[nodiscard]] std::string name() const override { return "cheat-nondet"; }

 private:
  mutable std::uint64_t calls_ = 0;
};

// ---------------------------------------------------------------------------
// Cheating protocol 3: under-reports its message length.  Each player is
// charged a single bit, but its whole adjacency row crosses to the referee
// through a stash on the protocol object — a covert channel the bit
// accounting never sees.
// ---------------------------------------------------------------------------
class StashChannelMis final
    : public model::SketchingProtocol<model::VertexSetOutput> {
 public:
  void encode(const model::VertexView& view,
              util::BitWriter& out) const override {
    if (stash_.size() <= view.id) stash_.resize(view.id + 1);
    stash_[view.id].assign(view.neighbors.begin(), view.neighbors.end());
    out.put_bit(false);  // the only bit ever charged
  }
  [[nodiscard]] model::VertexSetOutput decode(
      Vertex n, std::span<const util::BitString>,
      const model::PublicCoins&) const override {
    // Greedy MIS over the stashed (never-transmitted) adjacency.
    std::vector<bool> blocked(n, false);
    model::VertexSetOutput mis;
    for (Vertex v = 0; v < n; ++v) {
      if (blocked[v]) continue;
      mis.push_back(v);
      if (v < stash_.size()) {
        for (Vertex u : stash_[v]) {
          if (u < n) blocked[u] = true;
        }
      }
    }
    return mis;
  }
  [[nodiscard]] std::string name() const override { return "cheat-stash"; }

 private:
  mutable std::vector<std::vector<Vertex>> stash_;
};

// ---------------------------------------------------------------------------
// Cheating refined encoder: its decoded report contains an edge the player
// never saw.
// ---------------------------------------------------------------------------
class FabricatingEncoder final : public lowerbound::RefinedEncoder {
 public:
  void encode(const lowerbound::DmmParameters&,
              const lowerbound::RefinedPlayer&,
              util::BitWriter& out) const override {
    out.put_bit(true);
  }
  [[nodiscard]] std::vector<graph::Edge> decode(
      const lowerbound::DmmParameters&, util::BitReader&) const override {
    return {{0, 1}};  // claimed by every player, seen by almost none
  }
  [[nodiscard]] std::string name() const override { return "cheat-fabricate"; }
};

// ===========================================================================
// The three cheats are each caught, with the right invariant named.
// ===========================================================================

TEST(AuditCheats, OutOfRowReadIsCaughtAsLocality) {
  const AuditedRunner runner(11);
  const NeighborRowPeeker cheat;
  try {
    (void)runner.run(test_graph(), cheat);
    FAIL() << "out-of-row read was not caught";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), Invariant::kLocality);
    EXPECT_NE(std::string(e.what()).find("locality"), std::string::npos);
  }
}

TEST(AuditCheats, HiddenRandomnessIsCaughtAsCoinDeterminism) {
  const AuditedRunner runner(12);
  const HiddenStateEncoder cheat;
  try {
    (void)runner.run(test_graph(), cheat);
    FAIL() << "nondeterministic encoder was not caught";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), Invariant::kCoinDeterminism);
    EXPECT_NE(std::string(e.what()).find("coin-determinism"),
              std::string::npos);
  }
}

TEST(AuditCheats, CovertChannelIsCaughtAsBitAccounting) {
  const AuditedRunner runner(13);
  const StashChannelMis cheat;
  try {
    (void)runner.run(test_graph(), cheat);
    FAIL() << "under-reported message length was not caught";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), Invariant::kBitAccounting);
    EXPECT_NE(std::string(e.what()).find("bit-accounting"),
              std::string::npos);
  }
}

std::vector<Vertex> identity_sigma(const rs::RsGraph& base, std::uint64_t k) {
  const lowerbound::DmmParameters params = lowerbound::dmm_parameters(base, k);
  std::vector<Vertex> sigma(params.n);
  for (Vertex v = 0; v < params.n; ++v) sigma[v] = v;
  return sigma;
}

TEST(AuditCheats, FabricatedRefinedReportIsCaughtAsLocality) {
  const rs::RsGraph base = rs::book_rs(1, 2);
  const auto bits = lowerbound::EdgeBits::from_mask(2, 2, 1, 0b1011);
  const lowerbound::DmmInstance inst =
      lowerbound::build_dmm(base, 2, 0, bits, identity_sigma(base, 2));
  const auto players = lowerbound::build_refined_players(inst);
  const FabricatingEncoder cheat;
  try {
    (void)run_refined_audited(inst, players, cheat);
    FAIL() << "fabricated edge report was not caught";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), Invariant::kLocality);
  }
}

// ===========================================================================
// Honest protocols pass unchanged: same output, same accounting as the
// plain runner.
// ===========================================================================

template <typename Output>
void expect_clean_and_equivalent(
    const Graph& g, const model::SketchingProtocol<Output>& protocol,
    std::uint64_t seed) {
  const AuditedRunner runner(seed);
  const auto audited = runner.run(g, protocol);
  const model::PublicCoins coins(seed);
  const auto plain = model::run_protocol(g, protocol, coins);
  EXPECT_TRUE(audited.output == plain.output)
      << protocol.name() << ": audited output differs from plain run";
  EXPECT_EQ(audited.comm.max_bits, plain.comm.max_bits) << protocol.name();
  EXPECT_EQ(audited.comm.total_bits, plain.comm.total_bits)
      << protocol.name();
  EXPECT_EQ(audited.report.players_audited, g.num_vertices());
}

TEST(AuditClean, SketchingProtocolZooPasses) {
  const Graph g = test_graph(21, 26, 0.25);
  expect_clean_and_equivalent(g, protocols::AgmSpanningForest{}, 101);
  expect_clean_and_equivalent(g, protocols::TrivialMaximalMatching{}, 102);
  expect_clean_and_equivalent(g, protocols::TrivialMis{}, 103);
  expect_clean_and_equivalent(g, protocols::BudgetedMatching{64}, 104);
  expect_clean_and_equivalent(g, protocols::BudgetedMis{64}, 105);
  expect_clean_and_equivalent(g, protocols::BridgeFinding{4}, 106);
  expect_clean_and_equivalent(g, protocols::NeedleTwoSided{13}, 107);
  expect_clean_and_equivalent(g, protocols::NeedleOneSided{13, 48}, 108);
  expect_clean_and_equivalent(g, protocols::AgmConnectivity{}, 109);
  expect_clean_and_equivalent(g, protocols::KConnectivityCertificate{2}, 110);
  expect_clean_and_equivalent(
      g, protocols::PaletteSparsificationColoring{16, 6}, 111);
  expect_clean_and_equivalent(g, protocols::EdgeCountEstimate{8}, 112);
  expect_clean_and_equivalent(g, protocols::SampledSubgraph{0.5}, 113);
  expect_clean_and_equivalent(g, protocols::SampledDegeneracy{0.5}, 114);
}

TEST(AuditClean, AdaptiveProtocolsPass) {
  const Graph g = test_graph(31, 20, 0.3);
  const AuditedRunner runner(201);

  const protocols::TwoRoundMatching two_round{4, 8};
  const auto mm = runner.run_adaptive(g, two_round);
  EXPECT_EQ(mm.result.by_round.size(), two_round.num_rounds());

  const protocols::TwoRoundMis two_round_mis{0.3, 8};
  const auto mis = runner.run_adaptive(g, two_round_mis);
  EXPECT_EQ(mis.result.by_round.size(), two_round_mis.num_rounds());

  const protocols::BudgetedTwoRoundMatching budgeted{48, 48};
  (void)runner.run_adaptive(g, budgeted);

  const protocols::LubyBroadcastMis luby =
      protocols::make_luby_bcc(g.num_vertices());
  (void)runner.run_adaptive(g, luby);
}

TEST(AuditClean, AdaptiveMatchesPlainRunner) {
  const Graph g = test_graph(41, 18, 0.3);
  const std::uint64_t seed = 301;
  const protocols::TwoRoundMatching protocol{4, 8};
  const AuditedRunner runner(seed);
  const auto audited = runner.run_adaptive(g, protocol);
  const model::PublicCoins coins(seed);
  const auto plain = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(audited.result.output == plain.output);
  EXPECT_EQ(audited.result.comm.max_bits, plain.comm.max_bits);
  EXPECT_EQ(audited.result.comm.total_bits, plain.comm.total_bits);
  EXPECT_EQ(audited.result.broadcast_bits, plain.broadcast_bits);
}

TEST(AuditClean, WeightedRunnerPasses) {
  util::Rng rng(51);
  const Graph topo = graph::gnp(16, 0.3, rng);
  std::vector<graph::WeightedEdge> wedges;
  for (const graph::Edge& e : topo.edges()) {
    wedges.push_back(
        {e.u, e.v, static_cast<std::uint32_t>(1 + rng.next_below(3))});
  }
  const graph::WeightedGraph wg =
      graph::WeightedGraph::from_edges(16, wedges);
  const protocols::MstWeight protocol{3};
  const std::uint64_t seed = 401;
  const AuditedRunner runner(seed);
  const auto audited = runner.run(wg, protocol);
  const model::PublicCoins coins(seed);
  const auto plain = model::run_protocol(wg, protocol, coins);
  EXPECT_EQ(audited.output, plain.output);
  EXPECT_EQ(audited.comm.max_bits, plain.comm.max_bits);
}

// ===========================================================================
// Both lower-bound search paths under audit: the accounting-path encoders
// (full / capped / silent) and the protocol-search degree-table class.
// ===========================================================================

TEST(AuditRefined, AccountingPathEncodersPass) {
  const rs::RsGraph base = rs::book_rs(1, 2);
  const auto bits = lowerbound::EdgeBits::from_mask(2, 2, 1, 0b0110);
  const lowerbound::DmmInstance inst =
      lowerbound::build_dmm(base, 2, 1, bits, identity_sigma(base, 2));
  const auto players = lowerbound::build_refined_players(inst);

  const lowerbound::FullReportEncoder full;
  const lowerbound::CappedReportEncoder capped(1);
  const lowerbound::SilentEncoder silent;
  const std::array<const lowerbound::RefinedEncoder*, 3> encoders = {
      &full, &capped, &silent};
  for (const lowerbound::RefinedEncoder* enc : encoders) {
    const AuditedRefinedResult result =
        run_refined_audited(inst, players, *enc);
    EXPECT_EQ(result.messages.size(), players.size()) << enc->name();
    // Audited messages must agree bit-for-bit with the plain path.
    const auto plain = lowerbound::run_refined(inst, players, *enc);
    ASSERT_EQ(plain.size(), result.messages.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_TRUE(same_message(plain[i], result.messages[i]))
          << enc->name() << " player " << i;
    }
  }
}

TEST(AuditRefined, ProtocolSearchEncoderPasses) {
  const rs::RsGraph base = rs::book_rs(1, 2);
  const auto bits = lowerbound::EdgeBits::from_mask(2, 2, 1, 0b1111);
  const lowerbound::DmmInstance inst =
      lowerbound::build_dmm(base, 2, 0, bits, identity_sigma(base, 2));
  const auto players = lowerbound::build_refined_players(inst);

  const lowerbound::DegreeTableEncoder table(1, {0, 1, 1}, {0, 1, 1});
  const AuditedRefinedResult result =
      run_refined_audited(inst, players, table);
  EXPECT_EQ(result.max_message_bits, 1u);
  EXPECT_GT(result.report.bits_verified, 0u);
}

// ===========================================================================
// Report bookkeeping.
// ===========================================================================

TEST(AuditReportTest, CountsReflectReplaysAndScrubs) {
  const Graph g = test_graph(61, 10, 0.3);
  const AuditedRunner runner(501);
  const auto run = runner.run(g, protocols::TrivialMis{});
  // 3 guarded encodes + 1 order probe + 1 scrub per player.
  EXPECT_EQ(run.report.encode_calls, 5u * g.num_vertices());
  EXPECT_EQ(run.report.players_audited, g.num_vertices());
  EXPECT_GT(run.report.bits_verified, 0u);
}

TEST(AuditConfigTest, ChecksCanBeDisabled) {
  AuditConfig config;
  config.check_locality = false;
  config.check_determinism = false;
  config.check_accounting = false;
  const AuditedRunner runner(601, config);
  // With every check off, even the cheats run to completion.
  const HiddenStateEncoder nondet;
  (void)runner.run(test_graph(62, 8, 0.3), nondet);
  const StashChannelMis stash;
  (void)runner.run(test_graph(63, 8, 0.3), stash);
}

TEST(AuditNames, InvariantNamesAreStable) {
  EXPECT_EQ(invariant_name(Invariant::kLocality), "locality");
  EXPECT_EQ(invariant_name(Invariant::kCoinDeterminism), "coin-determinism");
  EXPECT_EQ(invariant_name(Invariant::kBitAccounting), "bit-accounting");
}

}  // namespace
}  // namespace ds::audit
