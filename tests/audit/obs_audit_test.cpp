// The observability audit (ISSUE 4 acceptance criterion): counters are
// only trustworthy if they agree with the ground truth the code already
// computes.  With metrics enabled,
//
//   * wire byte counters must equal the links' own bytes_sent() /
//     bytes_received() accounting, summed over every link in the session,
//   * the service.sketch_bits histogram must equal the session's
//     CommStats exactly (count == num_players, sum == total_bits,
//     max == max_bits), and service.payload_bits the uplink payload,
//   * the model.encode.sketch_bits histogram must equal the simulated
//     runner's CommStats the same way, for one-round and adaptive runs.
//
// Everything here runs single-session with obs::reset() up front, so the
// equalities are exact, not approximate.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "model/adaptive.h"
#include "model/runner.h"
#include "obs/obs.h"
#include "protocols/spanning_forest.h"
#include "protocols/two_round_matching.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"
#include "wire/tcp.h"

namespace ds {
namespace {

using namespace std::chrono_literals;
using graph::Graph;

class ObsAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::reset();
    if (!obs::metrics_enabled()) {
      GTEST_SKIP() << "observability compiled out (DISTSKETCH_OBS=OFF)";
    }
  }
  void TearDown() override { obs::set_metrics_enabled(false); }

  static Graph test_graph() {
    util::Rng rng(11);
    return graph::gnp(24, 0.25, rng);
  }
};

/// Bytes both ends of every link believe they moved, for comparison
/// against the transport counters.
struct LinkBytes {
  std::size_t sent = 0;
  std::size_t received = 0;

  void add(std::span<const std::unique_ptr<wire::Link>> links) {
    for (const std::unique_ptr<wire::Link>& link : links) {
      sent += link->bytes_sent();
      received += link->bytes_received();
    }
  }
};

TEST_F(ObsAudit, LoopbackByteCountersMatchLinkAccounting) {
  const Graph g = test_graph();
  const protocols::AgmSpanningForest protocol;
  const model::PublicCoins coins(71);
  constexpr std::size_t kPlayers = 3;

  std::vector<std::unique_ptr<wire::Link>> referee_links;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    referee_links.push_back(std::move(pair.referee_side));
    player_links.push_back(std::move(pair.player_side));
  }

  std::vector<std::thread> clients;
  clients.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_protocol(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const auto served = service::serve_protocol(
      referee_links, protocol, g.num_vertices(), coins, 5000ms);
  for (std::thread& t : clients) t.join();

  LinkBytes bytes;
  bytes.add(referee_links);
  bytes.add(player_links);
  EXPECT_EQ(obs::counter("wire.loopback.bytes_sent").value(), bytes.sent);
  EXPECT_EQ(obs::counter("wire.loopback.bytes_received").value(),
            bytes.received);
  EXPECT_EQ(
      obs::counter("wire.loopback.messages_sent").value(),
      obs::histogram("wire.loopback.message_bytes").count());

  // Service accounting against the session's CommStats, bit for bit.
  const obs::Histogram& sketch_bits = obs::histogram("service.sketch_bits");
  EXPECT_EQ(sketch_bits.count(), served.comm.num_players);
  EXPECT_EQ(sketch_bits.sum(), served.comm.total_bits);
  EXPECT_EQ(sketch_bits.max(), served.comm.max_bits);
  EXPECT_EQ(obs::counter("service.payload_bits").value(),
            served.uplink.payload_bits);
  EXPECT_EQ(obs::counter("service.frames_accepted").value(),
            served.comm.num_players);
  EXPECT_EQ(obs::counter("service.rounds_collected").value(), 1u);
  EXPECT_EQ(obs::counter("service.reject.corrupt").value(), 0u);
}

TEST_F(ObsAudit, TcpByteCountersMatchLinkAccounting) {
  const Graph g = test_graph();
  const protocols::AgmConnectivity protocol;
  const model::PublicCoins coins(72);
  constexpr std::size_t kPlayers = 2;

  wire::TcpListener listener;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  std::thread connector([&] {
    for (std::size_t i = 0; i < kPlayers; ++i) {
      player_links.push_back(
          wire::tcp_connect("127.0.0.1", listener.port(), 5000ms));
    }
  });
  std::vector<std::unique_ptr<wire::Link>> referee_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    referee_links.push_back(listener.accept(5000ms));
    ASSERT_NE(referee_links.back(), nullptr);
  }
  connector.join();

  std::vector<std::thread> clients;
  clients.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_protocol(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const auto served = service::serve_protocol(
      referee_links, protocol, g.num_vertices(), coins, 5000ms);
  for (std::thread& t : clients) t.join();

  LinkBytes bytes;
  bytes.add(referee_links);
  bytes.add(player_links);
  EXPECT_EQ(obs::counter("wire.tcp.bytes_sent").value(), bytes.sent);
  EXPECT_EQ(obs::counter("wire.tcp.bytes_received").value(), bytes.received);
  // Loopback TCP delivers every byte: both directions balance.
  EXPECT_EQ(bytes.sent, bytes.received);
  EXPECT_EQ(obs::counter("wire.tcp.accepts").value(), kPlayers);
  EXPECT_EQ(obs::counter("wire.tcp.connects").value(), kPlayers);
  EXPECT_EQ(obs::counter("wire.tcp.send_failures").value(), 0u);
  EXPECT_EQ(obs::counter("wire.tcp.poll_errors").value(), 0u);

  const obs::Histogram& sketch_bits = obs::histogram("service.sketch_bits");
  EXPECT_EQ(sketch_bits.count(), served.comm.num_players);
  EXPECT_EQ(sketch_bits.sum(), served.comm.total_bits);
  EXPECT_EQ(sketch_bits.max(), served.comm.max_bits);
}

TEST_F(ObsAudit, ModelHistogramMatchesSimulatedCommStats) {
  const Graph g = test_graph();
  const protocols::AgmSpanningForest protocol;
  const model::PublicCoins coins(73);

  const auto run = model::run_protocol(g, protocol, coins);

  const obs::Histogram& bits = obs::histogram("model.encode.sketch_bits");
  EXPECT_EQ(obs::counter("model.encode.sketches").value(),
            run.comm.num_players);
  EXPECT_EQ(bits.count(), run.comm.num_players);
  EXPECT_EQ(bits.sum(), run.comm.total_bits);
  EXPECT_EQ(bits.max(), run.comm.max_bits);
}

TEST_F(ObsAudit, AdaptiveRunnerCountersMatchByRoundTotals) {
  const Graph g = test_graph();
  const protocols::TwoRoundMatching protocol{4, 8};
  const model::PublicCoins coins(74);

  const auto run = model::run_adaptive(g, protocol, coins);

  std::size_t total_bits = 0;
  std::size_t encodes = 0;
  for (const model::CommStats& round : run.by_round) {
    total_bits += round.total_bits;
    encodes += round.num_players;
  }
  const obs::Histogram& bits = obs::histogram("model.encode.sketch_bits");
  EXPECT_EQ(obs::counter("model.encode.sketches").value(), encodes);
  EXPECT_EQ(bits.count(), encodes);
  EXPECT_EQ(bits.sum(), total_bits);
  EXPECT_EQ(obs::counter("model.adaptive.rounds").value(),
            protocol.num_rounds());
  EXPECT_EQ(obs::histogram("model.adaptive.broadcast_bits").sum(),
            run.broadcast_bits);
}

// The engine registers model.encode.* exactly once
// (engine/instrumentation.cpp), so a one-round and an adaptive run in
// the same session share the series: the histogram must equal the SUM of
// both runs' CommStats, not either one alone.  This is the regression
// test for the seed-era duplicate registration (runner.h and adaptive.h
// each owned a copy).
TEST_F(ObsAudit, OneRoundAndAdaptiveShareTheEncodeSeries) {
  const Graph g = test_graph();
  const protocols::AgmSpanningForest one_round;
  const protocols::TwoRoundMatching adaptive{4, 8};
  const model::PublicCoins coins(76);

  const auto first = model::run_protocol(g, one_round, coins);
  const auto second = model::run_adaptive(g, adaptive, coins);

  std::size_t adaptive_encodes = 0;
  for (const model::CommStats& round : second.by_round) {
    adaptive_encodes += round.num_players;
  }
  const obs::Histogram& bits = obs::histogram("model.encode.sketch_bits");
  EXPECT_EQ(obs::counter("model.encode.sketches").value(),
            first.comm.num_players + adaptive_encodes);
  EXPECT_EQ(bits.count(), first.comm.num_players + adaptive_encodes);
  EXPECT_EQ(bits.sum(), first.comm.total_bits + second.comm.total_bits);
  // The adaptive-only series saw only the adaptive run.
  EXPECT_EQ(obs::counter("model.adaptive.rounds").value(),
            adaptive.num_rounds());
  EXPECT_EQ(obs::histogram("model.adaptive.broadcast_bits").sum(),
            second.broadcast_bits);
}

// The adaptive wire path runs the same engine loop as serve_protocol:
// the per-frame service metrics must equal the served CommStats across
// ALL rounds, and rounds_collected must count every collect the engine
// issued.
TEST_F(ObsAudit, AdaptiveServiceHistogramMatchesServedCommStats) {
  const Graph g = test_graph();
  const protocols::TwoRoundMatching protocol{4, 8};
  const model::PublicCoins coins(77);
  constexpr std::size_t kPlayers = 2;

  std::vector<std::unique_ptr<wire::Link>> referee_links;
  std::vector<std::unique_ptr<wire::Link>> player_links;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    referee_links.push_back(std::move(pair.referee_side));
    player_links.push_back(std::move(pair.player_side));
  }
  std::vector<std::thread> clients;
  clients.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    clients.emplace_back([&, i] {
      (void)service::play_adaptive(
          *player_links[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const auto served = service::serve_adaptive(
      referee_links, protocol, g.num_vertices(), coins, 5000ms);
  for (std::thread& t : clients) t.join();

  // One frame per (vertex, round); the histogram aggregates all rounds.
  const obs::Histogram& sketch_bits = obs::histogram("service.sketch_bits");
  std::size_t frames = 0;
  for (const model::CommStats& round : served.by_round) {
    frames += round.num_players;
  }
  EXPECT_EQ(sketch_bits.count(), frames);
  EXPECT_EQ(sketch_bits.sum(), served.comm.total_bits);
  EXPECT_EQ(obs::counter("service.frames_accepted").value(), frames);
  EXPECT_EQ(obs::counter("service.rounds_collected").value(),
            protocol.num_rounds());
  EXPECT_EQ(obs::counter("service.payload_bits").value(),
            served.uplink.payload_bits);
  // Both decode paths ran through the engine's decode span.
  EXPECT_EQ(obs::histogram("service.decode_us").count(), 1u);
}

TEST_F(ObsAudit, DisabledMetricsRecordNothingAndPreserveResults) {
  const Graph g = test_graph();
  const protocols::AgmSpanningForest protocol;
  const model::PublicCoins coins(75);

  const auto with_metrics = model::run_protocol(g, protocol, coins);
  obs::set_metrics_enabled(false);
  obs::reset();
  const auto without_metrics = model::run_protocol(g, protocol, coins);
  obs::set_metrics_enabled(true);

  // Zero recording while off...
  EXPECT_EQ(obs::counter("model.encode.sketches").value(), 0u);
  EXPECT_EQ(obs::histogram("model.encode.sketch_bits").count(), 0u);
  // ...and bit-identical results either way.
  EXPECT_EQ(with_metrics.comm.total_bits, without_metrics.comm.total_bits);
  EXPECT_EQ(with_metrics.comm.max_bits, without_metrics.comm.max_bits);
  EXPECT_TRUE(with_metrics.output == without_metrics.output);
}

}  // namespace
}  // namespace ds
