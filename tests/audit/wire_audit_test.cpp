// The wire/sim byte-accounting cross-check (ISSUE 3 acceptance
// criterion): for every protocol in the src/protocols/ zoo, the sketches
// that arrive at the referee over the wire must equal the sketches the
// simulated runner collects — per-player, BitString for BitString — and
// the CommStats computed from the wire payloads must match
// model::run_protocol's accounting bit for bit.  Framing overhead is
// checked to be strictly separate: payload_bits alone equals the model
// total; framing_bits never leaks into it.
#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.h"
#include "model/runner.h"
#include "protocols/bridge_finding.h"
#include "protocols/budgeted_two_round.h"
#include "protocols/coloring.h"
#include "protocols/luby_bcc.h"
#include "protocols/needle.h"
#include "protocols/sampled_matching.h"
#include "protocols/sampled_mis.h"
#include "protocols/sampling_zoo.h"
#include "protocols/spanning_forest.h"
#include "protocols/trivial.h"
#include "protocols/two_round_matching.h"
#include "protocols/two_round_mis.h"
#include "protocols/zoo.h"
#include "service/player_client.h"
#include "service/referee_service.h"
#include "wire/loopback.h"

namespace ds {
namespace {

using namespace std::chrono_literals;
using graph::Graph;
using graph::Vertex;

Graph test_graph(std::uint64_t seed = 7, Vertex n = 26, double p = 0.25) {
  util::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

struct LoopbackCluster {
  std::vector<std::unique_ptr<wire::Link>> referee;
  std::vector<std::unique_ptr<wire::Link>> players;
};

LoopbackCluster make_cluster(std::size_t players) {
  LoopbackCluster cluster;
  for (std::size_t i = 0; i < players; ++i) {
    wire::LoopbackPair pair = wire::make_loopback_pair();
    cluster.referee.push_back(std::move(pair.referee_side));
    cluster.players.push_back(std::move(pair.player_side));
  }
  return cluster;
}

void expect_same_sketches(std::span<const util::BitString> wire_sketches,
                          std::span<const util::BitString> sim_sketches,
                          const std::string& name) {
  ASSERT_EQ(wire_sketches.size(), sim_sketches.size()) << name;
  for (std::size_t v = 0; v < sim_sketches.size(); ++v) {
    EXPECT_EQ(wire_sketches[v].bit_count(), sim_sketches[v].bit_count())
        << name << ": player " << v << " payload length drifted";
    EXPECT_EQ(wire_sketches[v].words(), sim_sketches[v].words())
        << name << ": player " << v << " payload bits drifted";
  }
}

void expect_same_comm(const model::CommStats& wire_comm,
                      const model::CommStats& sim_comm,
                      const std::string& name) {
  EXPECT_EQ(wire_comm.max_bits, sim_comm.max_bits) << name;
  EXPECT_EQ(wire_comm.total_bits, sim_comm.total_bits) << name;
  EXPECT_EQ(wire_comm.num_players, sim_comm.num_players) << name;
}

/// The cross-check core: ship the zoo protocol's sketches through a
/// loopback session (players sharded over two links) and compare what the
/// referee collected against the simulated runner's collection.
template <typename Output>
void expect_wire_equals_sim(const Graph& g,
                            const model::SketchingProtocol<Output>& protocol,
                            std::uint64_t seed) {
  const model::PublicCoins coins(seed);
  model::CommStats sim_comm;
  const std::vector<util::BitString> sim_sketches =
      model::collect_sketches(g, protocol, coins, sim_comm);

  LoopbackCluster cluster = make_cluster(2);
  for (std::size_t i = 0; i < 2; ++i) {
    (void)service::send_sketches(
        *cluster.players[i], g,
        service::shard_vertices(g.num_vertices(), 2, i), protocol, coins);
  }
  const service::CollectedRound round = service::collect_sketch_round(
      cluster.referee, g.num_vertices(), wire::protocol_id(protocol.name()),
      0, 2000ms);

  expect_same_sketches(round.sketches, sim_sketches, protocol.name());
  expect_same_comm(service::comm_from_sketches(round.sketches), sim_comm,
                   protocol.name());
  // The accounting contract itself: payload alone is the model cost;
  // framing is real but never part of it.
  EXPECT_EQ(round.wire.payload_bits, sim_comm.total_bits) << protocol.name();
  EXPECT_EQ(round.wire.rejected_frames, 0u) << protocol.name();
  EXPECT_GT(round.wire.framing_bits, 0u) << protocol.name();
}

TEST(WireAudit, SketchingProtocolZooPayloadsMatchSimulation) {
  const Graph g = test_graph(21);
  expect_wire_equals_sim(g, protocols::AgmSpanningForest{}, 101);
  expect_wire_equals_sim(g, protocols::TrivialMaximalMatching{}, 102);
  expect_wire_equals_sim(g, protocols::TrivialMis{}, 103);
  expect_wire_equals_sim(g, protocols::BudgetedMatching{64}, 104);
  expect_wire_equals_sim(g, protocols::BudgetedMis{64}, 105);
  expect_wire_equals_sim(g, protocols::BridgeFinding{4}, 106);
  expect_wire_equals_sim(g, protocols::NeedleTwoSided{13}, 107);
  expect_wire_equals_sim(g, protocols::NeedleOneSided{13, 48}, 108);
  expect_wire_equals_sim(g, protocols::AgmConnectivity{}, 109);
  expect_wire_equals_sim(g, protocols::KConnectivityCertificate{2}, 110);
  expect_wire_equals_sim(
      g, protocols::PaletteSparsificationColoring{16, 6}, 111);
  expect_wire_equals_sim(g, protocols::EdgeCountEstimate{8}, 112);
  expect_wire_equals_sim(g, protocols::SampledSubgraph{0.5}, 113);
  expect_wire_equals_sim(g, protocols::SampledDegeneracy{0.5}, 114);
}

TEST(WireAudit, WeightedProtocolPayloadsMatchSimulation) {
  util::Rng rng(51);
  const Graph topo = graph::gnp(16, 0.3, rng);
  std::vector<graph::WeightedEdge> wedges;
  for (const graph::Edge& e : topo.edges()) {
    wedges.push_back(
        {e.u, e.v, static_cast<std::uint32_t>(1 + rng.next_below(3))});
  }
  const graph::WeightedGraph wg =
      graph::WeightedGraph::from_edges(16, wedges);
  const protocols::MstWeight protocol{3};
  const model::PublicCoins coins(401);

  model::CommStats sim_comm;
  const std::vector<util::BitString> sim_sketches =
      model::collect_sketches(wg, protocol, coins, sim_comm);

  LoopbackCluster cluster = make_cluster(2);
  for (std::size_t i = 0; i < 2; ++i) {
    (void)service::send_sketches(
        *cluster.players[i], wg,
        service::shard_vertices(wg.num_vertices(), 2, i), protocol, coins);
  }
  const service::CollectedRound round = service::collect_sketch_round(
      cluster.referee, wg.num_vertices(),
      wire::protocol_id(protocol.name()), 0, 2000ms);

  expect_same_sketches(round.sketches, sim_sketches, protocol.name());
  expect_same_comm(service::comm_from_sketches(round.sketches), sim_comm,
                   protocol.name());
  EXPECT_EQ(round.wire.payload_bits, sim_comm.total_bits);
}

/// Adaptive protocols: the full multi-round session over loopback must
/// reproduce run_adaptive's accounting — per-round CommStats, totals, and
/// the once-per-round broadcast charge.
template <typename Output>
void expect_adaptive_wire_equals_sim(
    const Graph& g, const model::AdaptiveProtocol<Output>& protocol,
    std::uint64_t seed) {
  const model::PublicCoins coins(seed);
  constexpr std::size_t kPlayers = 2;

  LoopbackCluster cluster = make_cluster(kPlayers);
  std::vector<std::thread> threads;
  threads.reserve(kPlayers);
  for (std::size_t i = 0; i < kPlayers; ++i) {
    threads.emplace_back([&, i] {
      (void)service::play_adaptive(
          *cluster.players[i], g,
          service::shard_vertices(g.num_vertices(), kPlayers, i), protocol,
          coins, 5000ms);
    });
  }
  const service::AdaptiveServeResult<Output> served =
      service::serve_adaptive(cluster.referee, protocol, g.num_vertices(),
                              coins, 5000ms);
  for (std::thread& t : threads) t.join();

  const auto sim = model::run_adaptive(g, protocol, coins);
  EXPECT_TRUE(served.output == sim.output) << protocol.name();
  expect_same_comm(served.comm, sim.comm, protocol.name());
  EXPECT_EQ(served.broadcast_bits, sim.broadcast_bits) << protocol.name();
  ASSERT_EQ(served.by_round.size(), sim.by_round.size()) << protocol.name();
  for (std::size_t r = 0; r < served.by_round.size(); ++r) {
    expect_same_comm(served.by_round[r], sim.by_round[r],
                     protocol.name() + " round " + std::to_string(r));
  }
  EXPECT_EQ(served.uplink.payload_bits, sim.comm.total_bits)
      << protocol.name();
}

TEST(WireAudit, AdaptiveProtocolPayloadsMatchSimulation) {
  const Graph g = test_graph(31, 20, 0.3);
  expect_adaptive_wire_equals_sim(g, protocols::TwoRoundMatching{4, 8}, 201);
  expect_adaptive_wire_equals_sim(g, protocols::TwoRoundMis{0.3, 8}, 202);
  expect_adaptive_wire_equals_sim(
      g, protocols::BudgetedTwoRoundMatching{48, 48}, 203);
  expect_adaptive_wire_equals_sim(
      g, protocols::make_luby_bcc(g.num_vertices()), 204);
}

}  // namespace
}  // namespace ds
