// Assorted edge cases across modules that no focused suite covers.
#include <gtest/gtest.h>

#include "graph/densest.h"
#include "graph/generators.h"
#include "lowerbound/dmm.h"
#include "lowerbound/players.h"
#include "model/runner.h"
#include "protocols/zoo.h"
#include "rs/rs_graph.h"
#include "stream/dynamic_stream.h"
#include "util/hashing.h"

namespace ds {
namespace {

TEST(EdgeCases, KWiseHashRangeOne) {
  util::Rng rng(1);
  const util::KWiseHash h(2, rng);
  for (std::uint64_t x = 0; x < 50; ++x) EXPECT_EQ(h.bounded(x, 1), 0u);
}

TEST(EdgeCases, DmmWithSingleCopy) {
  // k = 1: no sharing across copies, but the machinery must still work.
  const rs::RsGraph base = rs::book_rs(2, 3);
  util::Rng rng(2);
  const lowerbound::DmmInstance inst = lowerbound::sample_dmm(base, 1, rng);
  EXPECT_EQ(inst.params.k, 1u);
  EXPECT_EQ(inst.params.n, inst.params.big_n);  // N - 2r + 2r
  EXPECT_EQ(inst.special_full.size(), 1u);
  const auto players = lowerbound::build_refined_players(inst);
  EXPECT_EQ(players.size(),
            inst.params.num_public() + inst.params.big_n);
}

TEST(EdgeCases, ZooProtocolsOnEdgelessGraph) {
  const graph::Graph g(10);
  const model::PublicCoins coins(3);
  EXPECT_EQ(model::run_protocol(g, protocols::AgmConnectivity{}, coins).output,
            10u);
  EXPECT_TRUE(model::run_protocol(g, protocols::KConnectivityCertificate{2},
                                  coins)
                  .output.empty());
}

TEST(EdgeCases, MstWeightOnEdgelessWeightedGraph) {
  const graph::WeightedGraph g(6);
  const model::PublicCoins coins(4);
  EXPECT_EQ(model::run_protocol(g, protocols::MstWeight{3}, coins).output,
            0u);
}

TEST(EdgeCases, DynamicConnectivityReinsertAfterDelete) {
  stream::DynamicConnectivity s(6, 5);
  s.insert(0, 1);
  s.remove(0, 1);
  s.insert(0, 1);  // net: present
  s.insert(2, 3);
  EXPECT_EQ(s.query_components(), 4u);  // {0,1},{2,3},{4},{5}
}

TEST(EdgeCases, DegeneracyOrderOnEmptyGraph) {
  EXPECT_TRUE(graph::degeneracy_order(graph::Graph(0)).empty());
  EXPECT_EQ(graph::degeneracy_order(graph::Graph(3)).size(), 3u);
}

TEST(EdgeCases, CycleRsAsDmmSubstrate) {
  // The C_{2t} family through the full D_MM pipeline.
  const rs::RsGraph base = rs::cycle_rs(4);
  util::Rng rng(6);
  const lowerbound::DmmInstance inst =
      lowerbound::sample_dmm(base, base.t(), rng);
  EXPECT_EQ(inst.params.r, 2u);
  for (const auto& m : inst.special_surviving) {
    for (const graph::Edge& e : m) {
      EXPECT_TRUE(inst.g.has_edge(e.u, e.v));
      EXPECT_FALSE(inst.is_public[e.u]);
      EXPECT_FALSE(inst.is_public[e.v]);
    }
  }
}

TEST(EdgeCases, SubsampleOfEmptyGraph) {
  util::Rng rng(7);
  EXPECT_EQ(graph::subsample_edges(graph::Graph(4), 0.5, rng).num_edges(),
            0u);
}

TEST(EdgeCases, BitWidthConsistencyAtPowersOfTwo) {
  for (unsigned k = 1; k < 20; ++k) {
    const std::uint64_t n = std::uint64_t{1} << k;
    EXPECT_EQ(util::bit_width_for(n), k);
    EXPECT_EQ(util::bit_width_for(n + 1), k + 1);
  }
}

}  // namespace
}  // namespace ds
