
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/core_test.cpp" "tests/CMakeFiles/ds_tests.dir/core/core_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/core/core_test.cpp.o.d"
  "/root/repo/tests/graph/connectivity_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/connectivity_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/connectivity_test.cpp.o.d"
  "/root/repo/tests/graph/densest_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/densest_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/densest_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/hopcroft_karp_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/hopcroft_karp_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/hopcroft_karp_test.cpp.o.d"
  "/root/repo/tests/graph/independent_set_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/independent_set_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/independent_set_test.cpp.o.d"
  "/root/repo/tests/graph/matching_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/matching_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/matching_test.cpp.o.d"
  "/root/repo/tests/graph/weighted_test.cpp" "tests/CMakeFiles/ds_tests.dir/graph/weighted_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/graph/weighted_test.cpp.o.d"
  "/root/repo/tests/info/distribution_test.cpp" "tests/CMakeFiles/ds_tests.dir/info/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/info/distribution_test.cpp.o.d"
  "/root/repo/tests/info/entropy_props_test.cpp" "tests/CMakeFiles/ds_tests.dir/info/entropy_props_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/info/entropy_props_test.cpp.o.d"
  "/root/repo/tests/info/joint_table_test.cpp" "tests/CMakeFiles/ds_tests.dir/info/joint_table_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/info/joint_table_test.cpp.o.d"
  "/root/repo/tests/lowerbound/accounting_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/accounting_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/accounting_test.cpp.o.d"
  "/root/repo/tests/lowerbound/claims_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/claims_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/claims_test.cpp.o.d"
  "/root/repo/tests/lowerbound/dmm_param_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/dmm_param_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/dmm_param_test.cpp.o.d"
  "/root/repo/tests/lowerbound/dmm_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/dmm_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/dmm_test.cpp.o.d"
  "/root/repo/tests/lowerbound/mis_reduction_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/mis_reduction_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/mis_reduction_test.cpp.o.d"
  "/root/repo/tests/lowerbound/optimal_referee_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/optimal_referee_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/optimal_referee_test.cpp.o.d"
  "/root/repo/tests/lowerbound/players_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/players_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/players_test.cpp.o.d"
  "/root/repo/tests/lowerbound/protocol_search_test.cpp" "tests/CMakeFiles/ds_tests.dir/lowerbound/protocol_search_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/lowerbound/protocol_search_test.cpp.o.d"
  "/root/repo/tests/misc/edge_cases_test.cpp" "tests/CMakeFiles/ds_tests.dir/misc/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/misc/edge_cases_test.cpp.o.d"
  "/root/repo/tests/model/adaptive_multiround_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/adaptive_multiround_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/adaptive_multiround_test.cpp.o.d"
  "/root/repo/tests/model/edge_partition_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/edge_partition_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/edge_partition_test.cpp.o.d"
  "/root/repo/tests/model/model_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/model_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/model_test.cpp.o.d"
  "/root/repo/tests/model/one_sided_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/one_sided_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/one_sided_test.cpp.o.d"
  "/root/repo/tests/model/private_coins_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/private_coins_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/private_coins_test.cpp.o.d"
  "/root/repo/tests/model/robustness_test.cpp" "tests/CMakeFiles/ds_tests.dir/model/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/model/robustness_test.cpp.o.d"
  "/root/repo/tests/protocols/bridge_finding_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/bridge_finding_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/bridge_finding_test.cpp.o.d"
  "/root/repo/tests/protocols/budget_param_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/budget_param_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/budget_param_test.cpp.o.d"
  "/root/repo/tests/protocols/budgeted_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/budgeted_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/budgeted_test.cpp.o.d"
  "/root/repo/tests/protocols/budgeted_two_round_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/budgeted_two_round_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/budgeted_two_round_test.cpp.o.d"
  "/root/repo/tests/protocols/coin_mismatch_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/coin_mismatch_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/coin_mismatch_test.cpp.o.d"
  "/root/repo/tests/protocols/coloring_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/coloring_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/coloring_test.cpp.o.d"
  "/root/repo/tests/protocols/luby_bcc_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/luby_bcc_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/luby_bcc_test.cpp.o.d"
  "/root/repo/tests/protocols/sampling_zoo_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/sampling_zoo_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/sampling_zoo_test.cpp.o.d"
  "/root/repo/tests/protocols/spanning_forest_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/spanning_forest_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/spanning_forest_test.cpp.o.d"
  "/root/repo/tests/protocols/trivial_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/trivial_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/trivial_test.cpp.o.d"
  "/root/repo/tests/protocols/two_round_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/two_round_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/two_round_test.cpp.o.d"
  "/root/repo/tests/protocols/zoo_test.cpp" "tests/CMakeFiles/ds_tests.dir/protocols/zoo_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/protocols/zoo_test.cpp.o.d"
  "/root/repo/tests/rs/ap_free_test.cpp" "tests/CMakeFiles/ds_tests.dir/rs/ap_free_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/rs/ap_free_test.cpp.o.d"
  "/root/repo/tests/rs/rs_graph_test.cpp" "tests/CMakeFiles/ds_tests.dir/rs/rs_graph_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/rs/rs_graph_test.cpp.o.d"
  "/root/repo/tests/rs/tripartite_test.cpp" "tests/CMakeFiles/ds_tests.dir/rs/tripartite_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/rs/tripartite_test.cpp.o.d"
  "/root/repo/tests/sketch/agm_test.cpp" "tests/CMakeFiles/ds_tests.dir/sketch/agm_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/sketch/agm_test.cpp.o.d"
  "/root/repo/tests/sketch/kmv_test.cpp" "tests/CMakeFiles/ds_tests.dir/sketch/kmv_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/sketch/kmv_test.cpp.o.d"
  "/root/repo/tests/sketch/l0_sampler_test.cpp" "tests/CMakeFiles/ds_tests.dir/sketch/l0_sampler_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/sketch/l0_sampler_test.cpp.o.d"
  "/root/repo/tests/sketch/one_sparse_test.cpp" "tests/CMakeFiles/ds_tests.dir/sketch/one_sparse_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/sketch/one_sparse_test.cpp.o.d"
  "/root/repo/tests/sketch/s_sparse_test.cpp" "tests/CMakeFiles/ds_tests.dir/sketch/s_sparse_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/sketch/s_sparse_test.cpp.o.d"
  "/root/repo/tests/stream/dynamic_stream_test.cpp" "tests/CMakeFiles/ds_tests.dir/stream/dynamic_stream_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/stream/dynamic_stream_test.cpp.o.d"
  "/root/repo/tests/util/bitio_test.cpp" "tests/CMakeFiles/ds_tests.dir/util/bitio_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/util/bitio_test.cpp.o.d"
  "/root/repo/tests/util/hashing_test.cpp" "tests/CMakeFiles/ds_tests.dir/util/hashing_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/util/hashing_test.cpp.o.d"
  "/root/repo/tests/util/modular_test.cpp" "tests/CMakeFiles/ds_tests.dir/util/modular_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/util/modular_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/ds_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/ds_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ds_tests.dir/util/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_info.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
