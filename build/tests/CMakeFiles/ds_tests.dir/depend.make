# Empty dependencies file for ds_tests.
# This may be replaced when dependencies are built.
