file(REMOVE_RECURSE
  "CMakeFiles/bench_mm_lowerbound.dir/bench_mm_lowerbound.cpp.o"
  "CMakeFiles/bench_mm_lowerbound.dir/bench_mm_lowerbound.cpp.o.d"
  "bench_mm_lowerbound"
  "bench_mm_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mm_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
