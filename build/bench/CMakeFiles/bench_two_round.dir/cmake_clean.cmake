file(REMOVE_RECURSE
  "CMakeFiles/bench_two_round.dir/bench_two_round.cpp.o"
  "CMakeFiles/bench_two_round.dir/bench_two_round.cpp.o.d"
  "bench_two_round"
  "bench_two_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
