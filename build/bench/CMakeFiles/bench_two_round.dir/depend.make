# Empty dependencies file for bench_two_round.
# This may be replaced when dependencies are built.
