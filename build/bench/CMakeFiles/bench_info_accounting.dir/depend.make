# Empty dependencies file for bench_info_accounting.
# This may be replaced when dependencies are built.
