file(REMOVE_RECURSE
  "CMakeFiles/bench_info_accounting.dir/bench_info_accounting.cpp.o"
  "CMakeFiles/bench_info_accounting.dir/bench_info_accounting.cpp.o.d"
  "bench_info_accounting"
  "bench_info_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_info_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
