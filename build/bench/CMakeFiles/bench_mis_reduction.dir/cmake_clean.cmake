file(REMOVE_RECURSE
  "CMakeFiles/bench_mis_reduction.dir/bench_mis_reduction.cpp.o"
  "CMakeFiles/bench_mis_reduction.dir/bench_mis_reduction.cpp.o.d"
  "bench_mis_reduction"
  "bench_mis_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
