# Empty compiler generated dependencies file for bench_rs_graphs.
# This may be replaced when dependencies are built.
