file(REMOVE_RECURSE
  "CMakeFiles/bench_rs_graphs.dir/bench_rs_graphs.cpp.o"
  "CMakeFiles/bench_rs_graphs.dir/bench_rs_graphs.cpp.o.d"
  "bench_rs_graphs"
  "bench_rs_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rs_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
