# Empty compiler generated dependencies file for bench_claim31.
# This may be replaced when dependencies are built.
