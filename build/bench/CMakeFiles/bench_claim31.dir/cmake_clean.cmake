file(REMOVE_RECURSE
  "CMakeFiles/bench_claim31.dir/bench_claim31.cpp.o"
  "CMakeFiles/bench_claim31.dir/bench_claim31.cpp.o.d"
  "bench_claim31"
  "bench_claim31.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim31.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
