file(REMOVE_RECURSE
  "CMakeFiles/bench_sketch_zoo.dir/bench_sketch_zoo.cpp.o"
  "CMakeFiles/bench_sketch_zoo.dir/bench_sketch_zoo.cpp.o.d"
  "bench_sketch_zoo"
  "bench_sketch_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
