# Empty compiler generated dependencies file for bench_sketch_zoo.
# This may be replaced when dependencies are built.
