# Empty compiler generated dependencies file for bench_spanning_forest.
# This may be replaced when dependencies are built.
