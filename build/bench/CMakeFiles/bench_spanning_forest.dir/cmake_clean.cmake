file(REMOVE_RECURSE
  "CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cpp.o"
  "CMakeFiles/bench_spanning_forest.dir/bench_spanning_forest.cpp.o.d"
  "bench_spanning_forest"
  "bench_spanning_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spanning_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
