# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_spanning_forest_demo]=] "/root/repo/build/examples/spanning_forest_demo")
set_tests_properties([=[example_spanning_forest_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_lower_bound_demo]=] "/root/repo/build/examples/lower_bound_demo")
set_tests_properties([=[example_lower_bound_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_mis_reduction_demo]=] "/root/repo/build/examples/mis_reduction_demo")
set_tests_properties([=[example_mis_reduction_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_dynamic_stream_demo]=] "/root/repo/build/examples/dynamic_stream_demo")
set_tests_properties([=[example_dynamic_stream_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_accounting_demo]=] "/root/repo/build/examples/accounting_demo")
set_tests_properties([=[example_accounting_demo]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
