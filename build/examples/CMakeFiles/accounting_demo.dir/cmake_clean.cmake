file(REMOVE_RECURSE
  "CMakeFiles/accounting_demo.dir/accounting_demo.cpp.o"
  "CMakeFiles/accounting_demo.dir/accounting_demo.cpp.o.d"
  "accounting_demo"
  "accounting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
