# Empty dependencies file for accounting_demo.
# This may be replaced when dependencies are built.
