# Empty dependencies file for spanning_forest_demo.
# This may be replaced when dependencies are built.
