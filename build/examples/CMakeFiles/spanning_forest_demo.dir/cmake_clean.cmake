file(REMOVE_RECURSE
  "CMakeFiles/spanning_forest_demo.dir/spanning_forest_demo.cpp.o"
  "CMakeFiles/spanning_forest_demo.dir/spanning_forest_demo.cpp.o.d"
  "spanning_forest_demo"
  "spanning_forest_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_forest_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
