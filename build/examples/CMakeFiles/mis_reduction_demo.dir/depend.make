# Empty dependencies file for mis_reduction_demo.
# This may be replaced when dependencies are built.
