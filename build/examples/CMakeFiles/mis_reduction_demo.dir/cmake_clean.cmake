file(REMOVE_RECURSE
  "CMakeFiles/mis_reduction_demo.dir/mis_reduction_demo.cpp.o"
  "CMakeFiles/mis_reduction_demo.dir/mis_reduction_demo.cpp.o.d"
  "mis_reduction_demo"
  "mis_reduction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_reduction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
