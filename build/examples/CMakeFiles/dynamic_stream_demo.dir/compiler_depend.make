# Empty compiler generated dependencies file for dynamic_stream_demo.
# This may be replaced when dependencies are built.
