file(REMOVE_RECURSE
  "CMakeFiles/dynamic_stream_demo.dir/dynamic_stream_demo.cpp.o"
  "CMakeFiles/dynamic_stream_demo.dir/dynamic_stream_demo.cpp.o.d"
  "dynamic_stream_demo"
  "dynamic_stream_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_stream_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
