file(REMOVE_RECURSE
  "CMakeFiles/ds_util.dir/util/bitio.cpp.o"
  "CMakeFiles/ds_util.dir/util/bitio.cpp.o.d"
  "CMakeFiles/ds_util.dir/util/hashing.cpp.o"
  "CMakeFiles/ds_util.dir/util/hashing.cpp.o.d"
  "CMakeFiles/ds_util.dir/util/modular.cpp.o"
  "CMakeFiles/ds_util.dir/util/modular.cpp.o.d"
  "CMakeFiles/ds_util.dir/util/rng.cpp.o"
  "CMakeFiles/ds_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ds_util.dir/util/stats.cpp.o"
  "CMakeFiles/ds_util.dir/util/stats.cpp.o.d"
  "libds_util.a"
  "libds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
