file(REMOVE_RECURSE
  "libds_sketch.a"
)
