
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/agm.cpp" "src/CMakeFiles/ds_sketch.dir/sketch/agm.cpp.o" "gcc" "src/CMakeFiles/ds_sketch.dir/sketch/agm.cpp.o.d"
  "/root/repo/src/sketch/kmv.cpp" "src/CMakeFiles/ds_sketch.dir/sketch/kmv.cpp.o" "gcc" "src/CMakeFiles/ds_sketch.dir/sketch/kmv.cpp.o.d"
  "/root/repo/src/sketch/l0_sampler.cpp" "src/CMakeFiles/ds_sketch.dir/sketch/l0_sampler.cpp.o" "gcc" "src/CMakeFiles/ds_sketch.dir/sketch/l0_sampler.cpp.o.d"
  "/root/repo/src/sketch/one_sparse.cpp" "src/CMakeFiles/ds_sketch.dir/sketch/one_sparse.cpp.o" "gcc" "src/CMakeFiles/ds_sketch.dir/sketch/one_sparse.cpp.o.d"
  "/root/repo/src/sketch/s_sparse.cpp" "src/CMakeFiles/ds_sketch.dir/sketch/s_sparse.cpp.o" "gcc" "src/CMakeFiles/ds_sketch.dir/sketch/s_sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
