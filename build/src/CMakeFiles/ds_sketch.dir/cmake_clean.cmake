file(REMOVE_RECURSE
  "CMakeFiles/ds_sketch.dir/sketch/agm.cpp.o"
  "CMakeFiles/ds_sketch.dir/sketch/agm.cpp.o.d"
  "CMakeFiles/ds_sketch.dir/sketch/kmv.cpp.o"
  "CMakeFiles/ds_sketch.dir/sketch/kmv.cpp.o.d"
  "CMakeFiles/ds_sketch.dir/sketch/l0_sampler.cpp.o"
  "CMakeFiles/ds_sketch.dir/sketch/l0_sampler.cpp.o.d"
  "CMakeFiles/ds_sketch.dir/sketch/one_sparse.cpp.o"
  "CMakeFiles/ds_sketch.dir/sketch/one_sparse.cpp.o.d"
  "CMakeFiles/ds_sketch.dir/sketch/s_sparse.cpp.o"
  "CMakeFiles/ds_sketch.dir/sketch/s_sparse.cpp.o.d"
  "libds_sketch.a"
  "libds_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
