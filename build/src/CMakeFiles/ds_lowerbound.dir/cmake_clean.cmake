file(REMOVE_RECURSE
  "CMakeFiles/ds_lowerbound.dir/lowerbound/accounting.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/accounting.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/claims.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/claims.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/dmm.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/dmm.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/mis_reduction.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/mis_reduction.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/optimal_referee.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/optimal_referee.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/players.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/players.cpp.o.d"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/protocol_search.cpp.o"
  "CMakeFiles/ds_lowerbound.dir/lowerbound/protocol_search.cpp.o.d"
  "libds_lowerbound.a"
  "libds_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
