file(REMOVE_RECURSE
  "libds_lowerbound.a"
)
