# Empty compiler generated dependencies file for ds_lowerbound.
# This may be replaced when dependencies are built.
