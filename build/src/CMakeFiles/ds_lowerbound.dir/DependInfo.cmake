
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbound/accounting.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/accounting.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/accounting.cpp.o.d"
  "/root/repo/src/lowerbound/claims.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/claims.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/claims.cpp.o.d"
  "/root/repo/src/lowerbound/dmm.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/dmm.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/dmm.cpp.o.d"
  "/root/repo/src/lowerbound/mis_reduction.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/mis_reduction.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/mis_reduction.cpp.o.d"
  "/root/repo/src/lowerbound/optimal_referee.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/optimal_referee.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/optimal_referee.cpp.o.d"
  "/root/repo/src/lowerbound/players.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/players.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/players.cpp.o.d"
  "/root/repo/src/lowerbound/protocol_search.cpp" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/protocol_search.cpp.o" "gcc" "src/CMakeFiles/ds_lowerbound.dir/lowerbound/protocol_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_info.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
