file(REMOVE_RECURSE
  "CMakeFiles/ds_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/densest.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/densest.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/hopcroft_karp.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/hopcroft_karp.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/independent_set.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/independent_set.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/matching.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/matching.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/mincut.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/mincut.cpp.o.d"
  "CMakeFiles/ds_graph.dir/graph/weighted.cpp.o"
  "CMakeFiles/ds_graph.dir/graph/weighted.cpp.o.d"
  "libds_graph.a"
  "libds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
