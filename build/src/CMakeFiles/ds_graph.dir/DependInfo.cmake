
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/ds_graph.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/densest.cpp" "src/CMakeFiles/ds_graph.dir/graph/densest.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/densest.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/ds_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ds_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hopcroft_karp.cpp" "src/CMakeFiles/ds_graph.dir/graph/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/hopcroft_karp.cpp.o.d"
  "/root/repo/src/graph/independent_set.cpp" "src/CMakeFiles/ds_graph.dir/graph/independent_set.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/independent_set.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/CMakeFiles/ds_graph.dir/graph/matching.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/matching.cpp.o.d"
  "/root/repo/src/graph/mincut.cpp" "src/CMakeFiles/ds_graph.dir/graph/mincut.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/mincut.cpp.o.d"
  "/root/repo/src/graph/weighted.cpp" "src/CMakeFiles/ds_graph.dir/graph/weighted.cpp.o" "gcc" "src/CMakeFiles/ds_graph.dir/graph/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
