file(REMOVE_RECURSE
  "CMakeFiles/ds_stream.dir/stream/dynamic_stream.cpp.o"
  "CMakeFiles/ds_stream.dir/stream/dynamic_stream.cpp.o.d"
  "libds_stream.a"
  "libds_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
