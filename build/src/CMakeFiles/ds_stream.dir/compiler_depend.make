# Empty compiler generated dependencies file for ds_stream.
# This may be replaced when dependencies are built.
