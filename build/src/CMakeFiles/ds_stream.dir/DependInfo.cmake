
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/dynamic_stream.cpp" "src/CMakeFiles/ds_stream.dir/stream/dynamic_stream.cpp.o" "gcc" "src/CMakeFiles/ds_stream.dir/stream/dynamic_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
