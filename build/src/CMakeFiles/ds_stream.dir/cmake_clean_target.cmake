file(REMOVE_RECURSE
  "libds_stream.a"
)
