file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/core/experiment.cpp.o"
  "CMakeFiles/ds_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/ds_core.dir/core/report.cpp.o"
  "CMakeFiles/ds_core.dir/core/report.cpp.o.d"
  "CMakeFiles/ds_core.dir/core/sweep.cpp.o"
  "CMakeFiles/ds_core.dir/core/sweep.cpp.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
