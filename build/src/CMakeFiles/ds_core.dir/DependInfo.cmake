
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/ds_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/ds_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/ds_core.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/core/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_info.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
