file(REMOVE_RECURSE
  "libds_info.a"
)
