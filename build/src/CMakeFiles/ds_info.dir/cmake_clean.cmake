file(REMOVE_RECURSE
  "CMakeFiles/ds_info.dir/info/distribution.cpp.o"
  "CMakeFiles/ds_info.dir/info/distribution.cpp.o.d"
  "CMakeFiles/ds_info.dir/info/entropy.cpp.o"
  "CMakeFiles/ds_info.dir/info/entropy.cpp.o.d"
  "CMakeFiles/ds_info.dir/info/joint_table.cpp.o"
  "CMakeFiles/ds_info.dir/info/joint_table.cpp.o.d"
  "libds_info.a"
  "libds_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
