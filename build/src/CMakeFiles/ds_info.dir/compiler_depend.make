# Empty compiler generated dependencies file for ds_info.
# This may be replaced when dependencies are built.
