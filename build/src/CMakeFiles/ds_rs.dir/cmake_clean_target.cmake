file(REMOVE_RECURSE
  "libds_rs.a"
)
