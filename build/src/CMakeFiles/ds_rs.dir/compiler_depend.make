# Empty compiler generated dependencies file for ds_rs.
# This may be replaced when dependencies are built.
