file(REMOVE_RECURSE
  "CMakeFiles/ds_rs.dir/rs/ap_free.cpp.o"
  "CMakeFiles/ds_rs.dir/rs/ap_free.cpp.o.d"
  "CMakeFiles/ds_rs.dir/rs/rs_graph.cpp.o"
  "CMakeFiles/ds_rs.dir/rs/rs_graph.cpp.o.d"
  "libds_rs.a"
  "libds_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
