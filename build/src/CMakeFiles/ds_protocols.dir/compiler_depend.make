# Empty compiler generated dependencies file for ds_protocols.
# This may be replaced when dependencies are built.
