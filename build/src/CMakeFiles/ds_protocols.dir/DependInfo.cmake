
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/bridge_finding.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/bridge_finding.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/bridge_finding.cpp.o.d"
  "/root/repo/src/protocols/budgeted.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/budgeted.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/budgeted.cpp.o.d"
  "/root/repo/src/protocols/budgeted_two_round.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/budgeted_two_round.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/budgeted_two_round.cpp.o.d"
  "/root/repo/src/protocols/coloring.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/coloring.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/coloring.cpp.o.d"
  "/root/repo/src/protocols/edge_partition_matching.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/edge_partition_matching.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/edge_partition_matching.cpp.o.d"
  "/root/repo/src/protocols/luby_bcc.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/luby_bcc.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/luby_bcc.cpp.o.d"
  "/root/repo/src/protocols/needle.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/needle.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/needle.cpp.o.d"
  "/root/repo/src/protocols/sampled_matching.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/sampled_matching.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/sampled_matching.cpp.o.d"
  "/root/repo/src/protocols/sampled_mis.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/sampled_mis.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/sampled_mis.cpp.o.d"
  "/root/repo/src/protocols/sampling_zoo.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/sampling_zoo.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/sampling_zoo.cpp.o.d"
  "/root/repo/src/protocols/spanning_forest.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/spanning_forest.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/spanning_forest.cpp.o.d"
  "/root/repo/src/protocols/trivial.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/trivial.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/trivial.cpp.o.d"
  "/root/repo/src/protocols/two_round_matching.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/two_round_matching.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/two_round_matching.cpp.o.d"
  "/root/repo/src/protocols/two_round_mis.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/two_round_mis.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/two_round_mis.cpp.o.d"
  "/root/repo/src/protocols/zoo.cpp" "src/CMakeFiles/ds_protocols.dir/protocols/zoo.cpp.o" "gcc" "src/CMakeFiles/ds_protocols.dir/protocols/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
