file(REMOVE_RECURSE
  "libds_protocols.a"
)
