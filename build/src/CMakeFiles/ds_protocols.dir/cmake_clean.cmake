file(REMOVE_RECURSE
  "CMakeFiles/ds_protocols.dir/protocols/bridge_finding.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/bridge_finding.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/budgeted.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/budgeted.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/budgeted_two_round.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/budgeted_two_round.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/coloring.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/coloring.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/edge_partition_matching.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/edge_partition_matching.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/luby_bcc.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/luby_bcc.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/needle.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/needle.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/sampled_matching.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/sampled_matching.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/sampled_mis.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/sampled_mis.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/sampling_zoo.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/sampling_zoo.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/spanning_forest.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/spanning_forest.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/trivial.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/trivial.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/two_round_matching.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/two_round_matching.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/two_round_mis.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/two_round_mis.cpp.o.d"
  "CMakeFiles/ds_protocols.dir/protocols/zoo.cpp.o"
  "CMakeFiles/ds_protocols.dir/protocols/zoo.cpp.o.d"
  "libds_protocols.a"
  "libds_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
