file(REMOVE_RECURSE
  "libds_model.a"
)
