
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/adaptive.cpp" "src/CMakeFiles/ds_model.dir/model/adaptive.cpp.o" "gcc" "src/CMakeFiles/ds_model.dir/model/adaptive.cpp.o.d"
  "/root/repo/src/model/coins.cpp" "src/CMakeFiles/ds_model.dir/model/coins.cpp.o" "gcc" "src/CMakeFiles/ds_model.dir/model/coins.cpp.o.d"
  "/root/repo/src/model/edge_partition.cpp" "src/CMakeFiles/ds_model.dir/model/edge_partition.cpp.o" "gcc" "src/CMakeFiles/ds_model.dir/model/edge_partition.cpp.o.d"
  "/root/repo/src/model/runner.cpp" "src/CMakeFiles/ds_model.dir/model/runner.cpp.o" "gcc" "src/CMakeFiles/ds_model.dir/model/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
