file(REMOVE_RECURSE
  "CMakeFiles/ds_model.dir/model/adaptive.cpp.o"
  "CMakeFiles/ds_model.dir/model/adaptive.cpp.o.d"
  "CMakeFiles/ds_model.dir/model/coins.cpp.o"
  "CMakeFiles/ds_model.dir/model/coins.cpp.o.d"
  "CMakeFiles/ds_model.dir/model/edge_partition.cpp.o"
  "CMakeFiles/ds_model.dir/model/edge_partition.cpp.o.d"
  "CMakeFiles/ds_model.dir/model/runner.cpp.o"
  "CMakeFiles/ds_model.dir/model/runner.cpp.o.d"
  "libds_model.a"
  "libds_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
