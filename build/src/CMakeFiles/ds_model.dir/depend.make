# Empty dependencies file for ds_model.
# This may be replaced when dependencies are built.
