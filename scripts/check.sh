#!/usr/bin/env bash
# One-command static-analysis driver: clang-tidy, cppcheck, clang-format
# (check mode), include sanity, and a warning-clean -Werror build.
#
# Tools that are not installed are SKIPPED with a notice (the container
# used for reproduction ships only gcc); CI images install the full set.
# Exit status is nonzero iff an available check failed.
#
# Usage:
#   scripts/check.sh                  # run everything available
#   scripts/check.sh --fix            # additionally let clang-format rewrite files
#   scripts/check.sh --lint-only [D]  # run ONLY distsketch-lint, over tree D
#                                     # (defaults to this repo); used by the
#                                     # harness test and for quick local runs.
#
# DISTSKETCH_LINT_BIN overrides where the distsketch_lint binary is found
# (default: $BUILD_DIR/tools/lint/distsketch_lint, built on demand).
set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
LINT_ONLY=0
LINT_ROOT=$PWD
if [[ "${1:-}" == "--fix" ]]; then
  FIX=1
elif [[ "${1:-}" == "--lint-only" ]]; then
  LINT_ONLY=1
  if [[ -n "${2:-}" ]]; then
    LINT_ROOT=$(cd "$2" && pwd)
  fi
fi

BUILD_DIR=build-check
FAILURES=()
SKIPPED=()

note()  { printf '\n==> %s\n' "$*"; }
have()  { command -v "$1" > /dev/null 2>&1; }
skip()  { SKIPPED+=("$1"); printf '    [skip] %s not installed\n' "$1"; }

# Locate (or build) the distsketch_lint binary.  Prints the path on
# stdout; returns nonzero if it cannot be produced.
lint_binary() {
  if [[ -n "${DISTSKETCH_LINT_BIN:-}" ]]; then
    echo "$DISTSKETCH_LINT_BIN"
    return 0
  fi
  local bin="$BUILD_DIR/tools/lint/distsketch_lint"
  if [[ ! -x "$bin" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      > /dev/null 2>&1 || return 1
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target distsketch_lint \
      > /dev/null 2>&1 || return 1
  fi
  echo "$bin"
}

run_distsketch_lint() {
  note "distsketch-lint (model invariants: charge-site, determinism, layering, obs-owner)"
  local bin
  if ! bin=$(lint_binary); then
    printf '    [FAIL] could not build distsketch_lint\n'
    FAILURES+=("distsketch-lint")
    return
  fi
  if "$bin" --root "$LINT_ROOT" --json lint_report.json \
        --layers tools/lint/layers.toml --owners tools/lint/obs_owners.toml; then
    printf '    [ok] distsketch-lint clean (report: lint_report.json)\n'
  else
    printf '    [FAIL] distsketch-lint violations (report: lint_report.json)\n'
    FAILURES+=("distsketch-lint")
  fi
}

if [[ $LINT_ONLY -eq 1 ]]; then
  run_distsketch_lint
  if ((${#FAILURES[@]})); then
    printf '\n    FAILED: %s\n' "${FAILURES[*]}"
    exit 1
  fi
  printf '\n    distsketch-lint passed\n'
  exit 0
fi

# All first-party sources (the committed tree only, never build dirs).
mapfile -t SOURCES < <(git ls-files '*.cpp' '*.h' | grep -E '^(src|tests|bench|examples)/')

# ---------------------------------------------------------------------------
note "warning-clean build (-Werror, all warnings from the root CMakeLists)"
# ---------------------------------------------------------------------------
if cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DDISTSKETCH_WERROR=ON \
      > "$BUILD_DIR.configure.log" 2>&1 \
   && cmake --build "$BUILD_DIR" -j "$(nproc)" > "$BUILD_DIR.build.log" 2>&1; then
  printf '    [ok] build is warning-clean\n'
else
  printf '    [FAIL] build has warnings/errors (see %s.build.log)\n' "$BUILD_DIR"
  grep -E 'warning:|error:' "$BUILD_DIR.build.log" | head -40 || true
  FAILURES+=("werror-build")
fi

# ---------------------------------------------------------------------------
# distsketch-lint: the custom invariant checker (tools/lint/).  Runs right
# after the build so the freshly built binary is reused.
# ---------------------------------------------------------------------------
run_distsketch_lint

# ---------------------------------------------------------------------------
note "include sanity (every source includes its own header first; no cycles)"
# ---------------------------------------------------------------------------
INCLUDE_OK=1
for src in "${SOURCES[@]}"; do
  case "$src" in
    src/*.cpp)
      hdr="${src%.cpp}.h"
      rel="${hdr#src/}"
      if [[ -f "$hdr" ]]; then
        first_include=$(grep -m1 '^#include' "$src" || true)
        if [[ "$first_include" != "#include \"$rel\"" ]]; then
          printf '    [FAIL] %s: first include is %s, expected "#include \"%s\""\n' \
            "$src" "${first_include:-<none>}" "$rel"
          INCLUDE_OK=0
        fi
      fi
      ;;
  esac
  # No relative (".." ) includes anywhere: all paths are rooted at src/.
  if grep -n '#include "\.\./' "$src" > /dev/null; then
    printf '    [FAIL] %s: relative ".." include\n' "$src"
    INCLUDE_OK=0
  fi
done
if [[ $INCLUDE_OK -eq 1 ]]; then
  printf '    [ok] include layout sane (%d files)\n' "${#SOURCES[@]}"
else
  FAILURES+=("include-sanity")
fi

# ---------------------------------------------------------------------------
note "clang-format"
# ---------------------------------------------------------------------------
if have clang-format; then
  if [[ $FIX -eq 1 ]]; then
    clang-format -i "${SOURCES[@]}"
    printf '    [ok] formatted %d files in place\n' "${#SOURCES[@]}"
  elif clang-format --dry-run --Werror "${SOURCES[@]}" > /dev/null 2>&1; then
    printf '    [ok] %d files formatted\n' "${#SOURCES[@]}"
  else
    printf '    [FAIL] formatting drift (run scripts/check.sh --fix)\n'
    FAILURES+=("clang-format")
  fi
else
  skip clang-format
fi

# ---------------------------------------------------------------------------
note "clang-tidy (profile: .clang-tidy)"
# ---------------------------------------------------------------------------
if have clang-tidy; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      > /dev/null 2>&1 || true
  fi
  TIDY_SOURCES=$(git ls-files 'src/**/*.cpp')
  if run-clang-tidy -p "$BUILD_DIR" -quiet $TIDY_SOURCES \
        > "$BUILD_DIR.tidy.log" 2>&1 \
     || clang-tidy -p "$BUILD_DIR" --quiet $TIDY_SOURCES \
        > "$BUILD_DIR.tidy.log" 2>&1; then
    printf '    [ok] clang-tidy clean\n'
  else
    printf '    [FAIL] clang-tidy findings (see %s.tidy.log)\n' "$BUILD_DIR"
    grep -E 'warning:|error:' "$BUILD_DIR.tidy.log" | head -40 || true
    FAILURES+=("clang-tidy")
  fi
else
  skip clang-tidy
fi

# ---------------------------------------------------------------------------
note "cppcheck"
# ---------------------------------------------------------------------------
if have cppcheck; then
  if cppcheck --enable=warning,performance,portability --inline-suppr \
        --suppress=missingIncludeSystem --error-exitcode=1 \
        --std=c++20 --language=c++ -I src \
        src/ > "$BUILD_DIR.cppcheck.log" 2>&1; then
    printf '    [ok] cppcheck clean\n'
  else
    printf '    [FAIL] cppcheck findings (see %s.cppcheck.log)\n' "$BUILD_DIR"
    tail -40 "$BUILD_DIR.cppcheck.log" || true
    FAILURES+=("cppcheck")
  fi
else
  skip cppcheck
fi

# ---------------------------------------------------------------------------
note "summary"
# ---------------------------------------------------------------------------
if ((${#SKIPPED[@]})); then
  printf '    skipped (not installed): %s\n' "${SKIPPED[*]}"
fi
if ((${#FAILURES[@]})); then
  printf '    FAILED: %s\n' "${FAILURES[*]}"
  exit 1
fi
printf '    all available checks passed\n'
