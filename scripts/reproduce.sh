#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite and
# every experiment bench, capturing outputs at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  [ -x "$b" ] || continue
  echo "=====================================================" | tee -a bench_output.txt
  echo "== $(basename "$b")" | tee -a bench_output.txt
  echo "=====================================================" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "Done: test_output.txt and bench_output.txt written."
