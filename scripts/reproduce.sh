#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite and
# every experiment bench, capturing outputs at the repo root.
#
# Always builds in its own out-of-source directory (build-reproduce) so it
# can neither clobber nor silently depend on any other build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-reproduce

GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release "${GENERATOR[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  {
    echo "====================================================="
    echo "== $(basename "$b")"
    echo "====================================================="
    "$b" 2>&1
  } | tee -a bench_output.txt
done

echo "Done: test_output.txt and bench_output.txt written."
