#!/usr/bin/env bash
# Build the release preset and run the parallel-engine benchmark.
#
# Emits BENCH_parallel.json (schema in docs/PARALLELISM.md): wall time
# serial vs parallel, speedup, bits/player per case, and an "identical"
# flag certifying the determinism contract held. Exits nonzero if any
# parallel run diverged from its serial twin.
#
# Usage:
#   scripts/bench.sh                 # writes ./BENCH_parallel.json
#   scripts/bench.sh out.json        # custom output path
#   DISTSKETCH_THREADS=4 scripts/bench.sh   # pin the pool width
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parallel.json}"
BUILD_DIR=build-release

if command -v ninja > /dev/null 2>&1; then
  cmake --preset release -G Ninja
else
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_parallel

"$BUILD_DIR"/bench/bench_parallel "$OUT"
