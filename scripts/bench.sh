#!/usr/bin/env bash
# Build the release preset and run the JSON-emitting benchmarks.
#
# Emits BENCH_parallel.json (schema in docs/PARALLELISM.md): wall time
# serial vs parallel, speedup, bits/player per case, and an "identical"
# flag certifying the determinism contract held. Exits nonzero if any
# parallel run diverged from its serial twin.
#
# Also emits BENCH_wire.json (schema in docs/WIRE.md): simulated vs
# loopback vs TCP wall time per case, players/sec, and the
# payload/framing/transport byte split, with a "payload_matches_sim"
# flag certifying the wire accounting contract. Exits nonzero if any
# wire session's payload bits diverged from the simulated CommStats.
#
# Both files carry a "metrics" block: the observability snapshot
# (docs/OBSERVABILITY.md) taken at the end of the run — pool, wire, and
# service counters/histograms alongside the timings.
#
# Also emits BENCH_engine.json (schema in docs/ENGINE.md): encode
# throughput, roofline figures (payload bytes/trial, encode/decode MB/s,
# encode bytes/cycle), and global allocation counts for the round engine
# with and without a SketchArena. Exits nonzero if the pooled steady
# state still allocates per vertex, its sketches diverge from the
# unpooled run, or — because the committed BENCH_engine.json is passed as
# --baseline — any case's encode MB/s drops below 80% of the committed
# figure (the no-regression gate; see docs/ENGINE.md "hot path").
#
# Also emits BENCH_shard.json (schema in docs/WIRE.md): the blocking
# single-referee session baseline vs the epoll referee's absorb rate at
# 1/2/4 shards, with the same payload_matches_sim certification. Exits
# nonzero only on a correctness divergence, never on a slow run.
#
# Also emits BENCH_stream.json (schema in docs/STREAMING.md): turnstile
# stream ingestion serial vs pooled at 1/4/max threads, with a
# matches_serial flag certifying bit-identical sharded ingestion. Runs
# the small --quick case by default; set BENCH_STREAM_MODE=--full for
# the committed n >= 10^6 numbers (a few GB of RAM, several minutes).
# Exits nonzero if any pooled ingest diverged from its serial twin.
#
# Also emits BENCH_scenario.json (schema in docs/SCENARIOS.md): every
# registered scenario swept over its default grid, serial vs pooled, with
# the identical-fingerprint certification, plus the arena steady-state
# allocation gate on the sweep's per-trial encode path. Exits nonzero if
# any sweep diverged across thread counts or the arena'd steady state
# still allocates per vertex.
#
# Usage:
#   scripts/bench.sh                 # writes ./BENCH_parallel.json +
#                                    #   ./BENCH_wire.json + ./BENCH_engine.json
#                                    #   + ./BENCH_shard.json + ./BENCH_stream.json
#                                    #   + ./BENCH_scenario.json
#   scripts/bench.sh out.json        # custom BENCH_parallel.json path
#   scripts/bench.sh out.json wire.json engine.json shard.json stream.json scenario.json
#   DISTSKETCH_THREADS=4 scripts/bench.sh   # pin the pool width
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parallel.json}"
WIRE_OUT="${2:-BENCH_wire.json}"
ENGINE_OUT="${3:-BENCH_engine.json}"
SHARD_OUT="${4:-BENCH_shard.json}"
STREAM_OUT="${5:-BENCH_stream.json}"
SCENARIO_OUT="${6:-BENCH_scenario.json}"
STREAM_MODE="${BENCH_STREAM_MODE:---quick}"
BUILD_DIR=build-release

# Never pass -G at a configured cache: CMake refuses to switch generators
# in place, so a cache configured with Make would make `-G Ninja` fail.
# Reconfigure with whatever generator the cache already has; only pick a
# generator (Ninja if present) on a fresh configure.
if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake --preset release
elif command -v ninja > /dev/null 2>&1; then
  cmake --preset release -G Ninja
else
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_parallel bench_wire bench_engine bench_shard bench_stream bench_scenario

"$BUILD_DIR"/bench/bench_parallel "$OUT"
"$BUILD_DIR"/bench/bench_wire "$WIRE_OUT"
# Gate against the committed baseline when refreshing the default file in
# place; a custom output path is a fresh measurement, not a regression
# check against unrelated numbers.
if [ "$ENGINE_OUT" = "BENCH_engine.json" ] && [ -f BENCH_engine.json ]; then
  cp BENCH_engine.json "$BUILD_DIR/engine_baseline.json"
  "$BUILD_DIR"/bench/bench_engine "$ENGINE_OUT" --baseline "$BUILD_DIR/engine_baseline.json"
else
  "$BUILD_DIR"/bench/bench_engine "$ENGINE_OUT"
fi
"$BUILD_DIR"/bench/bench_shard "$SHARD_OUT"
"$BUILD_DIR"/bench/bench_stream "$STREAM_OUT" $STREAM_MODE
"$BUILD_DIR"/bench/bench_scenario "$SCENARIO_OUT"
